#include "core/multiway_join.h"

#include <algorithm>
#include <limits>
#include <tuple>

namespace astream::core {

namespace {

std::vector<int> DeclaredStreams(const QueryDescriptor& desc) {
  std::vector<int> out;
  out.reserve(desc.join_inputs.size());
  for (const JoinInput& in : desc.join_inputs) out.push_back(in.stream);
  return out;
}

}  // namespace

SharedMultiwayJoin::SharedMultiwayJoin(SharedOperatorConfig config,
                                       int num_streams)
    : SharedWindowedOperator(std::move(config)),
      num_streams_(num_streams),
      ports_(num_streams),
      cost_model_(num_streams) {
  for (TupleArrangement& port : ports_) {
    port.BindSpill(spill_space());
    port.BindCompactor(compactor());
    port.SetAccessAware(access_aware_eviction());
  }
  if (governor() != nullptr) governor()->Register(this);
}

SharedMultiwayJoin::~SharedMultiwayJoin() {
  if (governor() != nullptr) governor()->Unregister(this);
}

void SharedMultiwayJoin::RefreshArenaBytes() {
  int64_t bytes = 0;
  size_t resident = 0;
  int64_t coldest_index = TupleArrangement::kNoVersion;
  for (const TupleArrangement& port : ports_) {
    port.AddBytes(&bytes, &resident, &coldest_index);
  }
  state_arena_bytes_ = bytes;
  if (governor() == nullptr) return;
  int64_t coldest_end = std::numeric_limits<int64_t>::max();
  if (coldest_index != TupleArrangement::kNoVersion) {
    auto slice = tracker().SliceByIndex(coldest_index);
    coldest_end = slice.has_value() ? slice->end : coldest_index;
  }
  // Report the read heat of the slice SpillOnce would pick, so the
  // governor's cross-operator ordering sees the access signal (see
  // SharedJoin::RefreshArenaBytes).
  int64_t victim_reads = 0;
  if (access_aware_eviction() &&
      coldest_index != TupleArrangement::kNoVersion) {
    int64_t best_v = TupleArrangement::kNoVersion;
    int64_t best_r = 0;
    for (const TupleArrangement& port : ports_) {
      int64_t r = 0;
      const int64_t v = port.PickVictim(&r);
      if (v == TupleArrangement::kNoVersion) continue;
      if (best_v == TupleArrangement::kNoVersion ||
          std::tie(r, v) < std::tie(best_r, best_v)) {
        best_v = v;
        best_r = r;
      }
    }
    victim_reads = best_v == TupleArrangement::kNoVersion ? 0 : best_r;
  }
  governor()->Update(this, resident, coldest_end, victim_reads);
}

void SharedMultiwayJoin::EnforceBudget() {
  if (governor() != nullptr) governor()->Enforce(this);
}

size_t SharedMultiwayJoin::ReleaseChainMemo() {
  if (chain_memo_.empty()) return 0;
  const size_t released =
      std::max(chain_memo_bytes_, chain_memo_.size() * sizeof(MemoEntry));
  chain_memo_.clear();
  chain_memo_bytes_ = 0;
  return released;
}

size_t SharedMultiwayJoin::SpillOnce() {
  // Derived state goes first: the chain memo is recomputable on demand.
  if (!chain_memo_.empty()) return ReleaseChainMemo();
  int64_t best_v = TupleArrangement::kNoVersion;
  int64_t best_r = 0;
  for (const TupleArrangement& port : ports_) {
    int64_t r = 0;
    const int64_t v = port.PickVictim(&r);
    if (v == TupleArrangement::kNoVersion) continue;
    if (best_v == TupleArrangement::kNoVersion ||
        std::tie(r, v) < std::tie(best_r, best_v)) {
      best_v = v;
      best_r = r;
    }
  }
  if (best_v == TupleArrangement::kNoVersion) return 0;
  int64_t coldest = TupleArrangement::kNoVersion;
  for (const TupleArrangement& port : ports_) {
    coldest = std::min(coldest, port.ColdestResident());
  }
  if (best_v != coldest) ++reload_saves_;
  size_t released = 0;
  for (TupleArrangement& port : ports_) released += port.SpillAt(best_v);
  released += tracker().cl_table().SpillBelow(best_v, spill_space());
  RefreshArenaBytes();
  return released;
}

void SharedMultiwayJoin::ProcessRecord(int port, spe::Record record,
                                       spe::Collector* out) {
  (void)out;
  NoteEventTime(record.event_time);
  cost_model_.ObserveInserts(port, 1);
  if (record.event_time < current_watermark()) {
    ++records_late_;
    if (metrics_on()) {
      (record.tags & hosted_mask()).ForEachSetBit([&](size_t slot) {
        if (obs::QuerySeries* s = SeriesForSlot(slot)) s->late_drops.Add();
      });
    }
    return;
  }
  QuerySet tags = record.tags & hosted_mask();
  ++bitset_ops_;
  if (tags.None()) return;
  if (meter_costs()) {
    tags.ForEachSetBit([&](size_t slot) {
      if (obs::QuerySeries* s = SeriesForSlot(slot)) s->cost_rows.Add();
    });
  }
  const SliceInfo slice = tracker().SliceFor(record.event_time);
  ports_[port].StoreAt(slice.index, current_mode()).Insert(record.row, tags);
  RefreshArenaBytes();
  EnforceBudget();
}

void SharedMultiwayJoin::ProcessBatch(int port, spe::RecordBatch& records,
                                      spe::Collector* out) {
  (void)out;
  SliceCursor cursor;
  TupleStore* cached_store = nullptr;
  int64_t ops = 0;
  int64_t arrived = 0;
  for (spe::Record& record : records) {
    NoteEventTime(record.event_time);
    ++arrived;
    if (record.event_time < current_watermark()) {
      ++records_late_;
      if (metrics_on()) {
        (record.tags & hosted_mask()).ForEachSetBit([&](size_t slot) {
          if (obs::QuerySeries* s = SeriesForSlot(slot)) s->late_drops.Add();
        });
      }
      continue;
    }
    scratch_tags_ = record.tags;
    scratch_tags_ &= hosted_mask();
    ++ops;
    if (scratch_tags_.None()) continue;
    if (meter_costs()) {
      scratch_tags_.ForEachSetBit([&](size_t slot) {
        if (obs::QuerySeries* s = SeriesForSlot(slot)) s->cost_rows.Add();
      });
    }
    if (cursor.Advance(tracker(), record.event_time) ||
        cached_store == nullptr) {
      cached_store =
          &ports_[port].StoreAt(cursor.slice().index, current_mode());
    }
    cached_store->Insert(record.row, scratch_tags_);
  }
  bitset_ops_ += ops;
  cost_model_.ObserveInserts(port, arrived);
  RefreshArenaBytes();
  EnforceBudget();
}

SharedMultiwayJoin::Plan SharedMultiwayJoin::PlanFor(
    const ActiveQuery& query) {
  Plan plan;
  plan.declared = DeclaredStreams(query.desc);
  const std::vector<int> cost_order = cost_model_.Order(plan.declared);
  if (share_arrangements()) {
    plan.chain = registry_.AcquireFor(query.slot, cost_order);
  } else {
    plan.chain = cost_order;  // reference mode: no sub-join attachment
  }
  return plan;
}

void SharedMultiwayJoin::OnQueryCreated(const ActiveQuery& query) {
  if (query.desc.kind != QueryKind::kMultiJoin) return;
  plans_[query.slot] = PlanFor(query);
}

void SharedMultiwayJoin::OnQueryDeleted(const DrainingQuery& draining) {
  auto it = plans_.find(draining.query.slot);
  if (it == plans_.end()) return;
  draining_plans_[draining.query.id] = std::move(it->second);
  plans_.erase(it);
  if (share_arrangements()) registry_.Release(draining.query.slot);
}

const SharedMultiwayJoin::Plan* SharedMultiwayJoin::ActivePlan(
    int slot) const {
  auto it = plans_.find(slot);
  return it == plans_.end() ? nullptr : &it->second;
}

const SharedMultiwayJoin::WindowIndex& SharedMultiwayJoin::IndexFor(
    int port, const std::vector<SliceInfo>& slices,
    std::map<int, WindowIndex>* cache) {
  auto it = cache->find(port);
  if (it != cache->end()) return it->second;
  WindowIndex index;
  for (const SliceInfo& s : slices) {
    const TupleStore* store = ports_[port].AtVersion(s.index);
    if (store == nullptr) continue;
    store->ForEach([&](const spe::Row& row, const QuerySet& tags) {
      index[row.key()].push_back(IndexEntry{row, tags, s.index});
    });
  }
  return (*cache)[port] = std::move(index);
}

const std::vector<SharedMultiwayJoin::Combination>&
SharedMultiwayJoin::EvalChain(const std::vector<int>& chain, size_t len,
                              TimestampMs start, TimestampMs end,
                              const std::vector<SliceInfo>& slices,
                              std::map<int, WindowIndex>* index_cache,
                              bool* computed) {
  ChainKey key{std::vector<int>(chain.begin(), chain.begin() + len),
               {start, end}};
  auto hit = chain_memo_.find(key);
  if (hit != chain_memo_.end()) {
    ++chains_reused_;
    *computed = false;
    return hit->second.combos;
  }
  ++chains_computed_;
  *computed = true;
  MemoEntry entry;
  if (len == 1) {
    const WindowIndex& index = IndexFor(chain[0], slices, index_cache);
    for (const auto& [k, entries] : index) {
      for (const IndexEntry& e : entries) {
        Combination c;
        c.parts.push_back(e.row);
        c.tags = e.tags;
        c.key = k;
        c.lo = c.hi = e.slice;
        entry.combos.push_back(std::move(c));
      }
    }
  } else {
    bool sub_computed = false;
    const std::vector<Combination>& prev =
        EvalChain(chain, len - 1, start, end, slices, index_cache,
                  &sub_computed);
    const WindowIndex& index = IndexFor(chain[len - 1], slices, index_cache);
    for (const Combination& c : prev) {
      auto probe = index.find(c.key);
      if (probe == index.end()) continue;
      for (const IndexEntry& e : probe->second) {
        QuerySet tags = c.tags & e.tags;
        ++bitset_ops_;
        if (tags.None()) continue;
        const int64_t lo = std::min(c.lo, e.slice);
        const int64_t hi = std::max(c.hi, e.slice);
        // Eq. 1 transitivity: the wide-span mask subsumes every narrower
        // mask already applied, so re-ANDing it yields exactly
        // (AND of member tags) & Mask(min slice, max slice).
        tags &= tracker().cl_table().Mask(lo, hi);
        ++bitset_ops_;
        if (tags.None()) continue;
        Combination nc;
        nc.parts = c.parts;
        nc.parts.push_back(e.row);
        nc.tags = std::move(tags);
        nc.key = c.key;
        nc.lo = lo;
        nc.hi = hi;
        entry.combos.push_back(std::move(nc));
      }
    }
  }
  entry.min_slice =
      slices.empty() ? TupleArrangement::kNoVersion : slices.front().index;
  entry.bytes = sizeof(MemoEntry);
  for (const Combination& c : entry.combos) {
    entry.bytes += sizeof(Combination) + c.parts.size() * sizeof(spe::Row) +
                   sizeof(QuerySet);
  }
  chain_memo_bytes_ += entry.bytes;
  auto [pos, inserted] = chain_memo_.emplace(std::move(key), std::move(entry));
  (void)inserted;
  return pos->second.combos;
}

void SharedMultiwayJoin::TriggerWindows(
    TimestampMs start, TimestampMs end,
    const std::vector<TriggeredQuery>& queries, spe::Collector* out) {
  // Emission unit = (probe chain, declared leg order): queries in a unit
  // share both the evaluated combinations and the output column order, so
  // one pass emits a single record per combination with the unit's
  // combined tag set. Units with a common chain prefix share its memoized
  // combinations; the map keeps unit order deterministic.
  struct Unit {
    QuerySet active_bits;
    std::vector<std::pair<int, QueryId>> draining;  // (slot, id)
    std::vector<const TriggeredQuery*> members;
  };
  std::map<std::pair<std::vector<int>, std::vector<int>>, Unit> units;
  for (const TriggeredQuery& tq : queries) {
    const Plan* plan = nullptr;
    if (tq.draining) {
      auto it = draining_plans_.find(tq.query->id);
      if (it != draining_plans_.end()) plan = &it->second;
    } else {
      plan = ActivePlan(tq.query->slot);
    }
    if (plan == nullptr) continue;
    Unit& unit = units[{plan->chain, plan->declared}];
    if (tq.draining) {
      unit.draining.emplace_back(tq.query->slot, tq.query->id);
    } else {
      unit.active_bits.Set(tq.query->slot);
    }
    unit.members.push_back(&tq);
  }
  if (units.empty()) return;

  const std::vector<SliceInfo> slices = tracker().SlicesIn(start, end);
  for (const auto& [key, unit] : units) {
    (void)unit;
    for (int port : key.first) {
      for (const SliceInfo& s : slices) ports_[port].NoteRead(s.index);
    }
  }

  std::map<int, WindowIndex> index_cache;
  const TimestampMs result_time = end - 1;
  for (const auto& [key, unit] : units) {
    const std::vector<int>& chain = key.first;
    const std::vector<int>& declared = key.second;
    bool computed = false;
    const std::vector<Combination>& combos = EvalChain(
        chain, chain.size(), start, end, slices, &index_cache, &computed);
    if (metrics_on()) {
      // The first member pays for the chain's computation; every other
      // query (in this unit and later triggers) reuses the memo.
      bool charge_compute = computed;
      for (const TriggeredQuery* tq : unit.members) {
        obs::QuerySeries* s = SeriesForQuery(tq->query->id);
        if (s == nullptr) continue;
        (charge_compute ? s->slices_computed : s->slices_reused).Add();
        charge_compute = false;
      }
    }
    std::vector<size_t> perm(declared.size(), 0);
    for (size_t j = 0; j < declared.size(); ++j) {
      for (size_t i = 0; i < chain.size(); ++i) {
        if (chain[i] == declared[j]) perm[j] = i;
      }
    }
    for (const Combination& c : combos) {
      spe::Row row = c.parts[perm[0]];
      for (size_t j = 1; j < perm.size(); ++j) {
        row = spe::Row::Concat(row, c.parts[perm[j]]);
      }
      QuerySet shared = c.tags & unit.active_bits;
      ++bitset_ops_;
      if (shared.Any()) {
        out->EmitRecord(result_time, row, std::move(shared));
      }
      for (const auto& [slot, id] : unit.draining) {
        if (c.tags.Test(slot)) {
          spe::StreamElement el;
          el.kind = spe::ElementKind::kRecord;
          el.record.event_time = result_time;
          el.record.row = row;
          el.record.tags = QuerySet::Single(slot);
          el.record.channel = id;
          out->Emit(std::move(el));
        }
      }
    }
  }
  // Reference mode: no cross-trigger sub-join sharing — the memo only
  // served this interval's evaluation.
  if (!share_arrangements()) ReleaseChainMemo();
}

void SharedMultiwayJoin::OnSlicesEvicted(const std::vector<int64_t>& indices) {
  if (indices.empty()) return;
  const int64_t max_evicted = indices.back();
  for (TupleArrangement& port : ports_) port.EvictThrough(max_evicted);
  for (auto it = chain_memo_.begin(); it != chain_memo_.end();) {
    if (it->second.min_slice <= max_evicted) {
      chain_memo_bytes_ -= std::min(chain_memo_bytes_, it->second.bytes);
      it = chain_memo_.erase(it);
    } else {
      ++it;
    }
  }
  RefreshArenaBytes();
}

void SharedMultiwayJoin::OnModeSwitch(StoreMode mode) {
  for (TupleArrangement& port : ports_) port.ConvertAll(mode);
}

void SharedMultiwayJoin::OnWatermarkTail(TimestampMs watermark,
                                         spe::Collector* out) {
  (void)watermark;
  (void)out;
  cost_model_.Tick();
}

void SharedMultiwayJoin::RebuildPlans() {
  plans_.clear();
  table().ForEach([&](const ActiveQuery& q) {
    if (q.desc.kind != QueryKind::kMultiJoin) return;
    Plan plan;
    plan.declared = DeclaredStreams(q.desc);
    if (const std::vector<int>* chain = registry_.ChainFor(q.slot)) {
      plan.chain = *chain;
    } else {
      plan.chain = cost_model_.Order(plan.declared);
    }
    plans_[q.slot] = std::move(plan);
  });
}

Status SharedMultiwayJoin::SnapshotState(spe::StateWriter* writer) {
  SerializeBase(writer);
  writer->WriteU64(ports_.size());
  for (TupleArrangement& port : ports_) port.Serialize(writer);
  registry_.Serialize(writer);
  cost_model_.Serialize(writer);
  writer->WriteU64(draining_plans_.size());
  for (const auto& [id, plan] : draining_plans_) {
    writer->WriteI64(id);
    writer->WriteU64(plan.chain.size());
    for (int s : plan.chain) writer->WriteI64(s);
    writer->WriteU64(plan.declared.size());
    for (int s : plan.declared) writer->WriteI64(s);
  }
  // The chain memo is a cache: recomputed on demand after restore.
  writer->WriteI64(chains_computed_);
  writer->WriteI64(records_late_);
  return Status::OK();
}

Status SharedMultiwayJoin::RestoreState(spe::StateReader* reader) {
  ASTREAM_RETURN_IF_ERROR(RestoreBase(reader));
  ReleaseChainMemo();
  const uint64_t num_ports = reader->ReadU64();
  if (num_ports != ports_.size()) {
    return Status::Internal("multiway snapshot port count mismatch");
  }
  for (TupleArrangement& port : ports_) {
    ASTREAM_RETURN_IF_ERROR(port.Restore(reader));
  }
  ASTREAM_RETURN_IF_ERROR(registry_.Restore(reader));
  ASTREAM_RETURN_IF_ERROR(cost_model_.Restore(reader));
  draining_plans_.clear();
  const uint64_t draining = reader->ReadU64();
  for (uint64_t i = 0; i < draining && reader->Ok(); ++i) {
    const QueryId id = reader->ReadI64();
    Plan plan;
    const uint64_t chain_len = reader->ReadU64();
    for (uint64_t k = 0; k < chain_len && reader->Ok(); ++k) {
      plan.chain.push_back(static_cast<int>(reader->ReadI64()));
    }
    const uint64_t declared_len = reader->ReadU64();
    for (uint64_t k = 0; k < declared_len && reader->Ok(); ++k) {
      plan.declared.push_back(static_cast<int>(reader->ReadI64()));
    }
    draining_plans_[id] = std::move(plan);
  }
  chains_computed_ = reader->ReadI64();
  records_late_ = reader->ReadI64();
  if (!reader->Ok()) return Status::Internal("bad multiway-join snapshot");
  RebuildPlans();
  RefreshArenaBytes();
  EnforceBudget();
  return Status::OK();
}

}  // namespace astream::core
