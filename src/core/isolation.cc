#include "core/isolation.h"

#include <chrono>
#include <thread>
#include <utility>

#include "core/window_math.h"

namespace astream::core {

IsolationManager::IsolationManager(AStreamJob* primary) : primary_(primary) {
  if (primary_->metrics().enabled()) {
    m_desharings_ = primary_->metrics().GetCounter("admission.desharings");
  }
  InstallPrimaryCallback();
}

IsolationManager::~IsolationManager() { TeardownDedicated(false); }

QueryId IsolationManager::InternalId(QueryId id) const {
  const auto it = internal_of_.find(id);
  return it == internal_of_.end() ? id : it->second;
}

QueryId IsolationManager::ExternalId(QueryId internal) const {
  const auto it = rewrite_.find(internal);
  return it == rewrite_.end() ? internal : it->second;
}

void IsolationManager::InstallPrimaryCallback() {
  primary_->SetResultCallback([this](QueryId channel,
                                     const spe::Record& record) {
    AStreamJob::ResultCallback cb;
    QueryId visible = channel;
    {
      std::lock_guard<std::mutex> lock(cb_mutex_);
      if (user_cb_ == nullptr) return;
      cb = user_cb_;
      const auto it = rewrite_.find(channel);
      if (it != rewrite_.end()) visible = it->second;
    }
    cb(visible, record);
  });
}

void IsolationManager::SetResultCallback(AStreamJob::ResultCallback callback) {
  std::lock_guard<std::mutex> lock(cb_mutex_);
  user_cb_ = std::move(callback);
}

Result<QueryId> IsolationManager::Submit(const QueryDescriptor& desc) {
  ASTREAM_ASSIGN_OR_RETURN(AStreamJob::SubmitOutcome outcome,
                           SubmitWithOutcome(desc));
  if (outcome.decision == AdmissionDecision::kRejected) {
    return Status::AdmissionRejected(outcome.reason);
  }
  return outcome.id;
}

Result<AStreamJob::SubmitOutcome> IsolationManager::SubmitWithOutcome(
    const QueryDescriptor& desc) {
  ASTREAM_ASSIGN_OR_RETURN(AStreamJob::SubmitOutcome outcome,
                           primary_->SubmitWithOutcome(desc));
  if (outcome.decision != AdmissionDecision::kRejected) {
    descs_[outcome.id] = desc;
  }
  return outcome;
}

Status IsolationManager::Cancel(QueryId id) {
  if (id == whale_ && dedicated_ != nullptr) {
    // Cancelling the whale itself ends the migration: its windows ending
    // at or before the deletion marker drain from the dedicated job.
    ASTREAM_RETURN_IF_ERROR(dedicated_->Cancel(whale_internal_));
    dedicated_->Pump(true);
    if (readmit_id_ != -1) {
      // Abandon a hand-back in flight: the re-admitted copy dies too.
      (void)primary_->Cancel(readmit_id_);
    }
    TeardownDedicated(/*drain=*/true);
    descs_.erase(id);
    internal_of_.erase(id);
    std::lock_guard<std::mutex> lock(cb_mutex_);
    split_time_ = kMinTimestamp;
    handover_end_ = kMaxTimestamp;
    whale_ = -1;
    whale_internal_ = -1;
    readmit_id_ = -1;
    whale_origin_ = kMinTimestamp;
    return Status::OK();
  }
  const QueryId iid = InternalId(id);
  ASTREAM_RETURN_IF_ERROR(primary_->Cancel(iid));
  descs_.erase(id);
  internal_of_.erase(id);
  // rewrite_ stays: the cancelled query's draining windows still arrive
  // on the internal channel and must reach the client under its id.
  return Status::OK();
}

PushResult IsolationManager::PushA(TimestampMs event_time, spe::Row row) {
  if (dedicated_ != nullptr) dedicated_->PushA(event_time, row);
  return primary_->PushA(event_time, std::move(row));
}

PushResult IsolationManager::PushB(TimestampMs event_time, spe::Row row) {
  if (dedicated_ != nullptr) dedicated_->PushB(event_time, row);
  return primary_->PushB(event_time, std::move(row));
}

void IsolationManager::PushWatermark(TimestampMs watermark) {
  last_watermark_ = watermark;
  primary_->PushWatermark(watermark);
  if (dedicated_ != nullptr) dedicated_->PushWatermark(watermark);
  MaybeArmHandover();
  TimestampMs boundary;
  {
    std::lock_guard<std::mutex> lock(cb_mutex_);
    boundary = handover_end_;
  }
  if (readmit_id_ != -1 && boundary != kMaxTimestamp &&
      watermark >= boundary) {
    FinishHandback();
  }
}

int IsolationManager::Pump(bool force) {
  int injected = primary_->Pump(force);
  if (dedicated_ != nullptr) injected += dedicated_->Pump(force);
  return injected;
}

Status IsolationManager::Maintain() {
  const SloOptions& slo = primary_->options().slo;
  if (dedicated_ == nullptr) {
    if (!slo.enable_desharing) return Status::OK();
    // Whale detection: the costliest time-windowed query, by recent
    // metered cost, once it dominates a busy-enough fleet while the p99
    // target (if any) is violated.
    const std::map<QueryId, int64_t> costs = primary_->MeteredCosts();
    int64_t total = 0;
    for (const auto& [id, cost] : costs) total += cost;
    if (total <= 0 || total < slo.whale_min_cost) return Status::OK();
    if (slo.p99_event_latency_ms > 0) {
      const int64_t p99 =
          primary_->qos().TakeSnapshot().event_time_latency.Percentile(99);
      if (p99 < slo.p99_event_latency_ms) return Status::OK();
    }
    QueryId fattest = -1;
    int64_t fattest_cost = 0;
    for (const auto& [iid, cost] : costs) {
      const QueryId ext = ExternalId(iid);
      const auto it = descs_.find(ext);
      if (it == descs_.end()) continue;
      if (!it->second.HasWindow() || !it->second.window.IsTimeWindow()) {
        continue;  // only windowed queries migrate (checkpointed state)
      }
      if (cost > fattest_cost) {
        fattest_cost = cost;
        fattest = ext;
      }
    }
    if (fattest == -1 ||
        static_cast<double>(fattest_cost) < slo.whale_cost_fraction * total) {
      return Status::OK();
    }
    return EjectWhale(fattest);
  }

  MaybeArmHandover();
  TimestampMs boundary;
  {
    std::lock_guard<std::mutex> lock(cb_mutex_);
    boundary = handover_end_;
  }
  if (readmit_id_ != -1) {
    if (boundary != kMaxTimestamp && last_watermark_ >= boundary) {
      FinishHandback();
    }
    return Status::OK();
  }
  if (slo.auto_readmit) {
    // Hand back once the whale's recent metered cost share cooled down.
    const std::map<QueryId, int64_t> shared = primary_->MeteredCosts();
    const std::map<QueryId, int64_t> own = dedicated_->MeteredCosts();
    const auto it = own.find(whale_internal_);
    const int64_t whale_cost = it == own.end() ? 0 : it->second;
    int64_t total = whale_cost;
    for (const auto& [id, cost] : shared) total += cost;
    if (total > 0 && static_cast<double>(whale_cost) <
                         slo.readmit_cost_fraction * total) {
      return BeginReadmit();
    }
  }
  return Status::OK();
}

Status IsolationManager::WaitForCheckpoint(
    int64_t id,
    std::shared_ptr<const spe::CheckpointStore::Checkpoint>* out) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (true) {
    std::shared_ptr<const spe::CheckpointStore::Checkpoint> snap =
        primary_->checkpoints().Get(id);
    if (snap != nullptr && snap->complete) {
      *out = std::move(snap);
      return Status::OK();
    }
    if (!primary_->Health().ok()) return primary_->Health();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Internal("de-sharing checkpoint did not complete");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

Status IsolationManager::EjectWhale(QueryId id) {
  if (dedicated_ != nullptr) {
    return Status::FailedPrecondition("a whale is already de-shared");
  }
  const auto it = descs_.find(id);
  if (it == descs_.end()) {
    return Status::NotFound("unknown query id (submit through the manager)");
  }
  const QueryDescriptor desc = it->second;
  if (!desc.HasWindow() || !desc.window.IsTimeWindow()) {
    return Status::InvalidArgument(
        "only time-windowed queries can be de-shared");
  }
  const QueryId iid = InternalId(id);

  // 1. Flush everything buffered, then checkpoint the shared plan. The
  // whale's lattice anchor survives the round trip via align_origin.
  primary_->Pump(true);
  TimestampMs origin = desc.align_origin != kMinTimestamp
                           ? desc.align_origin
                           : primary_->session().CreatedAt(iid);
  if (origin == kMinTimestamp) {
    return Status::FailedPrecondition("query has not deployed yet");
  }
  const int64_t ckpt = primary_->TriggerCheckpoint();
  std::shared_ptr<const spe::CheckpointStore::Checkpoint> snap;
  ASTREAM_RETURN_IF_ERROR(WaitForCheckpoint(ckpt, &snap));

  // 2. Cancel the whale in the shared plan. Windows ending at or before
  // the cancel marker D1 still drain there (deletion semantics), so the
  // dedicated egress only passes ends after D1.
  ASTREAM_RETURN_IF_ERROR(primary_->Cancel(iid));
  primary_->Pump(true);
  const TimestampMs d1 = primary_->session().last_marker_time();

  // 3. A dedicated job from the same options: admission off, metering on
  // (re-admission watches it), private checkpoint store and spill dir,
  // the same clock so both sides share one notion of now.
  AStreamJob::Options opts = primary_->options();
  opts.slo = SloOptions{};
  opts.enable_metrics = true;
  opts.meter_costs = true;
  opts.checkpoint_store = nullptr;
  opts.storage.spill_dir.clear();  // empty = a private per-job temp dir
  ASTREAM_ASSIGN_OR_RETURN(dedicated_, AStreamJob::Create(std::move(opts)));
  Status s = dedicated_->Start();
  if (s.ok()) s = dedicated_->RestoreFrom(*snap);
  if (s.ok()) {
    // 4. The dedicated job hosts only the whale: cancel every restored
    // minnow (their draining output is filtered out at the egress).
    for (const QueryId qid : dedicated_->session().ActiveIds()) {
      if (qid == iid) continue;
      s = dedicated_->Cancel(qid);
      if (!s.ok()) break;
    }
  }
  if (!s.ok()) {
    TeardownDedicated(/*drain=*/false);
    return s;
  }
  dedicated_->Pump(true);

  {
    std::lock_guard<std::mutex> lock(cb_mutex_);
    split_time_ = d1;
    handover_end_ = kMaxTimestamp;
    whale_ = id;
    whale_internal_ = iid;
    readmit_id_ = -1;
  }
  whale_origin_ = origin;
  dedicated_->SetResultCallback(
      [this](QueryId channel, const spe::Record& record) {
        AStreamJob::ResultCallback cb;
        QueryId visible = -1;
        {
          std::lock_guard<std::mutex> lock(cb_mutex_);
          if (channel != whale_internal_ || user_cb_ == nullptr) return;
          // Window end = result time + 1. The dedicated job owns exactly
          // the whale windows ending after the split and (once a hand-back
          // is armed) at or before the hand-over boundary.
          const TimestampMs end = record.event_time + 1;
          if (end <= split_time_ || end > handover_end_) return;
          cb = user_cb_;
          visible = whale_;
        }
        cb(visible, record);
      });
  ++desharings_;
  if (m_desharings_ != nullptr) m_desharings_->Add();
  return Status::OK();
}

Status IsolationManager::BeginReadmit() {
  if (dedicated_ == nullptr) {
    return Status::FailedPrecondition("no de-shared whale");
  }
  if (readmit_id_ != -1) {
    return Status::FailedPrecondition("hand-back already in progress");
  }
  QueryDescriptor desc = descs_[whale_];
  // Re-anchor the window lattice on the whale's original grid so the
  // shared plan's first window continues exactly where the dedicated
  // job's coverage will stop.
  desc.align_origin = whale_origin_;
  ASTREAM_ASSIGN_OR_RETURN(AStreamJob::SubmitOutcome outcome,
                           primary_->SubmitWithOutcome(desc));
  if (outcome.decision == AdmissionDecision::kRejected) {
    return Status::AdmissionRejected("re-admission rejected: " +
                                     outcome.reason);
  }
  {
    std::lock_guard<std::mutex> lock(cb_mutex_);
    readmit_id_ = outcome.id;
  }
  descs_[whale_] = desc;
  primary_->Pump(true);
  MaybeArmHandover();
  return Status::OK();
}

void IsolationManager::MaybeArmHandover() {
  if (readmit_id_ == -1) return;
  {
    std::lock_guard<std::mutex> lock(cb_mutex_);
    if (handover_end_ != kMaxTimestamp) return;  // already armed
  }
  // Until the re-admission deploys (it may sit in the admission queue),
  // the boundary is unknown and the dedicated job keeps covering.
  const TimestampMs deployed_at = primary_->session().CreatedAt(readmit_id_);
  if (deployed_at == kMinTimestamp) return;
  const QueryDescriptor& desc = descs_[whale_];
  const TimestampMs first_start =
      AlignForward(deployed_at, whale_origin_, desc.window.slide);
  // First shared window is [A, A + length); the dedicated job owns ends
  // up to and including B = A + length - slide (lattice-adjacent).
  const TimestampMs boundary = first_start + desc.window.length -
                               desc.window.slide;
  {
    std::lock_guard<std::mutex> lock(cb_mutex_);
    handover_end_ = boundary;
    rewrite_[readmit_id_] = whale_;
  }
  internal_of_[whale_] = readmit_id_;
  if (last_watermark_ >= boundary) FinishHandback();
}

void IsolationManager::FinishHandback() {
  if (dedicated_ == nullptr) return;
  TeardownDedicated(/*drain=*/true);
  std::lock_guard<std::mutex> lock(cb_mutex_);
  split_time_ = kMinTimestamp;
  handover_end_ = kMaxTimestamp;
  whale_ = -1;
  whale_internal_ = -1;
  readmit_id_ = -1;
  whale_origin_ = kMinTimestamp;
}

void IsolationManager::TeardownDedicated(bool drain) {
  if (dedicated_ == nullptr) return;
  if (drain) {
    (void)dedicated_->FinishAndWait();
  } else {
    (void)dedicated_->Stop();
  }
  dedicated_.reset();
}

}  // namespace astream::core
