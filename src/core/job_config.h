#ifndef ASTREAM_CORE_JOB_CONFIG_H_
#define ASTREAM_CORE_JOB_CONFIG_H_

#include <functional>
#include <string>
#include <utility>

#include "core/astream.h"
#include "spe/supervisor.h"

namespace astream {

/// External input stream of a job. Replaces the hardwired PushA/PushB
/// pair: `Client::Push(StreamId::kA, t, row)` is the generic surface, the
/// old names survive as thin compat shims on the facade. Streams kC..kE
/// exist only on kMultiway topologies (Options::num_streams).
enum class StreamId : int { kA = 0, kB = 1, kC = 2, kD = 3, kE = 4 };

/// One validated configuration for a whole deployment: the per-shard
/// engine options (core::AStreamJob::Options, which already embeds the
/// storage budget knobs), plus the shard/router layer on top. Invalid
/// configs fail at construction — `Validated()` / `JobConfigBuilder::
/// Build()` return Result<JobConfig>, mirroring QueryBuilder's eager
/// validation — so a bad knob can never surface mid-run.
struct JobConfig {
  /// Per-shard engine options (topology, parallelism, session batching,
  /// runner mode, storage budget, ...). Every shard runs an identical
  /// copy; per-shard checkpoint stores/ids are managed by the runtime.
  core::AStreamJob::Options job;

  /// Number of key-sharded AStreamJob runtimes behind the router.
  int shards = 1;
  /// Hash-slot count of the shard plan (ownership granularity for live
  /// resharding). Must be >= shards; slot assignment of a key does not
  /// depend on the shard count, only slot->owner changes on reshard.
  int slots = 64;
  /// Route each shard's ingress through a lock-free SPSC ring drained by
  /// a per-shard pump thread (retires the mutex MPMC channel from the
  /// push path). Off: pushes apply inline on the control thread, which
  /// keeps runs deterministic for tests.
  bool shard_threads = false;
  /// Capacity of each shard's ingress ring (power of two).
  size_t ingress_capacity = 1024;

  /// Wrap every shard in a harness::SupervisedJob (source log + output
  /// dedup + supervised crash recovery). Required for kill-one-shard
  /// fault tolerance and for durable resharding hand-off.
  bool supervised = false;
  /// Non-empty: per-shard durable checkpoint directories are created
  /// under `<state_dir>/shard-<i>.g<gen>` and resharding hands state over
  /// via the PR 5 run-file format. Requires `supervised`.
  std::string state_dir;
  /// Supervisor restart/backoff policy for supervised shards.
  spe::Supervisor::Options supervisor;
  /// Start the per-shard watchdog thread (see SupervisedJob::Options).
  bool start_watchdog = false;
  /// Re-pins the clock during supervised replay (tests: ManualClock).
  std::function<void(TimestampMs)> pin_clock;

  /// Eagerly validates `config` and returns it, or the first violation.
  static Result<JobConfig> Validated(JobConfig config);
};

/// Validation shared by JobConfig and AStreamJob::Create: every engine
/// option with a constrained domain is checked here, in one place.
Status ValidateJobOptions(const core::AStreamJob::Options& options);

/// Fluent construction mirroring core::QueryBuilder: chain setters, then
/// Build() validates eagerly and returns Result<JobConfig>.
///
///   auto config = JobConfigBuilder(AStreamJob::TopologyKind::kJoin)
///                     .Shards(4)
///                     .ShardThreads(true)
///                     .Build();
class JobConfigBuilder {
 public:
  explicit JobConfigBuilder(
      core::AStreamJob::TopologyKind topology =
          core::AStreamJob::TopologyKind::kAggregation) {
    config_.job.topology = topology;
  }
  explicit JobConfigBuilder(JobConfig seed) : config_(std::move(seed)) {}

  JobConfigBuilder& Topology(core::AStreamJob::TopologyKind kind) {
    config_.job.topology = kind;
    return *this;
  }
  JobConfigBuilder& Parallelism(int parallelism) {
    config_.job.parallelism = parallelism;
    return *this;
  }
  /// Number of external input streams (kMultiway topologies, 2..5).
  JobConfigBuilder& NumStreams(int num_streams) {
    config_.job.num_streams = num_streams;
    return *this;
  }
  JobConfigBuilder& Threaded(bool threaded) {
    config_.job.threaded = threaded;
    return *this;
  }
  JobConfigBuilder& BatchSize(size_t batch_size) {
    config_.job.batch_size = batch_size;
    return *this;
  }
  JobConfigBuilder& SessionBatch(size_t batch_size,
                                 TimestampMs max_timeout_ms) {
    config_.job.session.batch_size = batch_size;
    config_.job.session.max_timeout_ms = max_timeout_ms;
    return *this;
  }
  JobConfigBuilder& MaxJoinStages(int stages) {
    config_.job.max_join_stages = stages;
    return *this;
  }
  JobConfigBuilder& Clock(astream::Clock* clock) {
    config_.job.clock = clock;
    return *this;
  }
  JobConfigBuilder& MemoryBudget(int64_t bytes) {
    config_.job.storage.memory_budget_bytes = bytes;
    return *this;
  }
  /// Storage engine v2 knobs (DESIGN.md §13); only meaningful budgeted.
  JobConfigBuilder& CompressSpill(bool on) {
    config_.job.storage.compress_spill = on;
    return *this;
  }
  JobConfigBuilder& Compaction(bool on) {
    config_.job.storage.compaction = on;
    return *this;
  }
  JobConfigBuilder& AccessAwareEviction(bool on) {
    config_.job.storage.access_aware_eviction = on;
    return *this;
  }
  /// Cross-window state sharing (DESIGN.md §12). Off = the per-query-store
  /// reference mode; outputs are byte-identical either way.
  JobConfigBuilder& ShareArrangements(bool on) {
    config_.job.share_arrangements = on;
    return *this;
  }
  /// Per-query isolation (DESIGN.md §14) -----------------------------------
  /// Full SLO policy in one go (admission, de-sharing, cost caps).
  JobConfigBuilder& Slo(core::SloOptions slo) {
    config_.job.slo = slo;
    return *this;
  }
  /// Gate Submit through admission control (implies cost metering).
  JobConfigBuilder& AdmissionControl(bool on) {
    config_.job.slo.enable_admission = on;
    return *this;
  }
  /// Fleet p99 event-latency target (ms); 0 disables the latency gate.
  JobConfigBuilder& P99TargetMs(int64_t target_ms) {
    config_.job.slo.p99_event_latency_ms = target_ms;
    return *this;
  }
  /// Hard cap on concurrently admitted queries (0 = unlimited).
  JobConfigBuilder& MaxActiveQueries(size_t max_active) {
    config_.job.slo.max_active_queries = max_active;
    return *this;
  }
  /// Reject any single query predicted costlier than this (0 = off).
  JobConfigBuilder& MaxPredictedCost(double max_cost) {
    config_.job.slo.max_predicted_cost = max_cost;
    return *this;
  }
  /// Whale de-sharing (requires AdmissionControl(true)).
  JobConfigBuilder& Desharing(bool on) {
    config_.job.slo.enable_desharing = on;
    return *this;
  }
  /// Per-query cost metering without admission enforcement.
  JobConfigBuilder& MeterCosts(bool on) {
    config_.job.meter_costs = on;
    return *this;
  }
  JobConfigBuilder& Shards(int shards) {
    config_.shards = shards;
    return *this;
  }
  JobConfigBuilder& Slots(int slots) {
    config_.slots = slots;
    return *this;
  }
  JobConfigBuilder& ShardThreads(bool on) {
    config_.shard_threads = on;
    return *this;
  }
  JobConfigBuilder& IngressCapacity(size_t capacity) {
    config_.ingress_capacity = capacity;
    return *this;
  }
  JobConfigBuilder& Supervised(bool on) {
    config_.supervised = on;
    return *this;
  }
  JobConfigBuilder& StateDir(std::string dir) {
    config_.state_dir = std::move(dir);
    return *this;
  }

  /// Direct access for knobs without a dedicated setter.
  JobConfig& mutable_config() { return config_; }

  Result<JobConfig> Build() && {
    return JobConfig::Validated(std::move(config_));
  }
  Result<JobConfig> Build() const& {
    return JobConfig::Validated(config_);
  }

 private:
  JobConfig config_;
};

}  // namespace astream

#endif  // ASTREAM_CORE_JOB_CONFIG_H_
