#ifndef ASTREAM_CORE_SHARED_AGGREGATION_H_
#define ASTREAM_CORE_SHARED_AGGREGATION_H_

#include <map>
#include <vector>

#include "core/arrangement.h"
#include "core/shared_operator.h"

namespace astream::core {

/// The shared windowed aggregation (Sec. 3.1.5).
///
/// Unlike the shared join, tuples are not materialized: each slice keeps,
/// per key, one partial accumulator per interested query slot; the tuple is
/// discarded after updating them. A query window combines the partials of
/// its slices (masked through the CL table) and emits one [key, aggregate]
/// row per key, stamped with the query's output channel.
///
/// Session windows (gap-based) are supported per Sec. 3.1.3: they do not
/// align to shared slices, so the operator tracks per-(query, key) session
/// accumulators directly; selection and routing are still shared.
class SharedAggregation : public SharedWindowedOperator,
                          public storage::SpillClient {
 public:
  struct AggConfig {
    SharedOperatorConfig shared;
    /// Number of input ports (1 for aggregation topologies; one per join
    /// stage in complex topologies).
    int num_ports = 1;
    /// Which queries consume records arriving on `port`. Defaults to
    /// every hosted query on every port.
    std::function<bool(const ActiveQuery&, int port)> port_filter;
  };

  explicit SharedAggregation(AggConfig config);
  ~SharedAggregation() override;

  int num_ports() const override { return config_.num_ports; }
  void ProcessRecord(int port, spe::Record record,
                     spe::Collector* out) override;
  /// Vectorized path: batch tuples are grouped by slice, so the slice
  /// store is resolved once per run of same-slice tuples (tuples arrive
  /// roughly time-ordered) instead of once per tuple, and the port-mask
  /// intersection reuses one scratch query-set.
  void ProcessBatch(int port, spe::RecordBatch& records,
                    spe::Collector* out) override;
  Status SnapshotState(spe::StateWriter* writer) override;
  Status RestoreState(spe::StateReader* reader) override;

  int64_t bitset_ops() const { return bitset_ops_; }
  int64_t records_late() const { return records_late_; }
  /// Arena bytes backing all live slice stores (the state.arena_bytes
  /// gauge). Refreshed by the task thread after inserts and evictions.
  int64_t state_arena_bytes() const { return state_arena_bytes_; }
  /// Times the access-aware policy evicted something other than the
  /// coldest slice — each one a reload a standing query did not pay
  /// (the storage.reload_saves gauge).
  int64_t reload_saves() const { return reload_saves_; }
  /// The shared arrangement (memo hit/miss counters, composed-block bytes).
  const AggArrangement& arrangement() const { return arrange_; }

  /// storage::SpillClient: spills the coldest slice's partials (sessions
  /// never spill — they are per-query, not slice-aligned, and tiny).
  /// Governor-invoked only, on this operator's task thread.
  size_t SpillOnce() override;

 protected:
  void TriggerWindows(TimestampMs start, TimestampMs end,
                      const std::vector<TriggeredQuery>& queries,
                      spe::Collector* out) override;
  void OnSlicesEvicted(const std::vector<int64_t>& indices) override;
  void OnActiveSetChanged() override;
  void OnQueryCreated(const ActiveQuery& query) override;
  void OnQueryDeleted(const DrainingQuery& draining) override;
  void OnWatermarkTail(TimestampMs watermark, spe::Collector* out) override;
  int64_t ResidentStateBytes() const override { return state_arena_bytes_; }

 private:
  /// Cached per-slot facts, rebuilt on every changelog.
  struct SlotInfo {
    bool valid = false;
    bool session = false;
    int agg_column = 1;
    spe::AggKind agg_kind = spe::AggKind::kSum;
  };

  struct SessionState {
    TimestampMs start = 0;
    TimestampMs last = 0;
    spe::Accumulator acc;
  };

  /// Session-window bookkeeping of one hosted session query.
  struct SessionQuery {
    QueryId id = -1;
    int slot = -1;
    TimestampMs gap = 0;
    spe::AggKind agg_kind = spe::AggKind::kSum;
    int agg_column = 1;
    /// Set when the query was deleted: sessions closing after this are
    /// cancelled; sessions closing at or before it still emit.
    TimestampMs deleted_at = kMaxTimestamp;
    std::map<spe::Value, std::vector<SessionState>> sessions;
  };

  void AddToSession(SessionQuery* sq, spe::Value key, TimestampMs t,
                    spe::Value value);
  /// Routes one in-window record into session state and slice partials.
  /// `tags` is the record's tag set already intersected with the port mask.
  void IngestRecord(const spe::Record& record, const QuerySet& tags,
                    SliceCursor* cursor, AggStore** cached_store);
  /// Recomputes arena/resident byte totals and reports them (with the
  /// coldest resident slice's window end) to the governor, if any.
  void RefreshArenaBytes();
  /// Asks the governor to rebalance; may call SpillOnce on this thread.
  void EnforceBudget();

  AggConfig config_;
  /// Versioned group-shared partials: slice index -> AggStore.
  AggArrangement arrange_;
  std::vector<SlotInfo> slot_info_;
  std::vector<QuerySet> port_masks_;
  /// One entry per distinct agg column among hosted time-window slots:
  /// with sharing on, a tuple does one accumulator Add per entry (tagged
  /// with every interested slot) instead of one per slot.
  struct ColumnMask {
    int column = 1;
    QuerySet slots;
  };
  std::vector<ColumnMask> column_masks_;
  /// All hosted time-window slots (the per-slot insert path, sharing off).
  QuerySet time_mask_;
  /// All hosted session-window slots.
  QuerySet session_mask_;
  std::map<QueryId, SessionQuery> session_queries_;
  int64_t bitset_ops_ = 0;
  int64_t records_late_ = 0;
  int64_t state_arena_bytes_ = 0;
  int64_t reload_saves_ = 0;
  // Scratch query-set reused across the tuples of one batch.
  QuerySet scratch_tags_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_SHARED_AGGREGATION_H_
