#ifndef ASTREAM_CORE_CL_TABLE_H_
#define ASTREAM_CORE_CL_TABLE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/query.h"
#include "storage/spill_space.h"

namespace astream::core {

/// Changelog-set table over window slices (Sec. 2.1.2, Eq. 1).
///
/// Every slice i carries a delta mask: the changelog-set between slice i-1
/// and slice i (all-ones when no query changed at that boundary). The mask
/// between two slices j <= i is
///
///     CL[i][j] = 1                         if i == j
///     CL[i][j] = CL[i-1][j] & delta[i]     if i >  j        (Eq. 1)
///
/// i.e. bit q survives iff slot q was never touched by a changelog in the
/// span (j, i]. Combining tuples/partials from slices i and j is valid for
/// query slot q only if CL[i][j] has bit q — this is what makes bitwise
/// operations between tuples born under different query populations
/// consistent, including after slot reuse.
///
/// Memoized masks are laid out per slice: slice i owns the row of masks
/// CL[i][j], indexed by the span length i - j. A row lives and dies with
/// its slice, so EvictBelow pops whole rows from the deque front (wholesale
/// free, the same lifetime discipline as the slice-store arenas) instead of
/// scanning a global (i, j) hash map.
class ClTable {
 public:
  /// Registers slice `index` (consecutive, increasing) with the delta mask
  /// at its left boundary and the slot-universe size at creation time.
  /// `delta` must be all-ones over the universe if no changelog occurred
  /// at the boundary.
  void AddSlice(int64_t index, QuerySet delta, size_t num_slots);

  /// CL mask between slices i and j (order-insensitive). Both slices must
  /// be registered and not evicted. The returned reference is valid only
  /// until the next Mask / AddSlice / EvictBelow call (memo rows are
  /// vectors and may reallocate) — consume it before touching the table.
  const QuerySet& Mask(int64_t i, int64_t j);

  /// Convenience: Mask(i, j).Test(slot).
  bool SlotUnchanged(int64_t i, int64_t j, int slot) {
    return Mask(i, j).Test(slot);
  }

  /// Drops all state for slices with index < min_index.
  void EvictBelow(int64_t min_index);

  /// Out-of-core: writes the delta masks of all resident slices with
  /// index <= max_index into one run (key = slice index) and drops their
  /// deltas and memo rows from memory. Masks touching a spilled slice are
  /// recomputed on demand after an automatic delta reload (EnsureDelta).
  /// Returns an estimate of the bytes released; 0 if nothing was resident
  /// in range or the write failed (state then unchanged).
  size_t SpillBelow(int64_t max_index, storage::SpillSpace* space);

  /// Slices whose delta currently lives on disk (observability/tests).
  size_t NumSpilledDeltas() const;

  int64_t first_index() const { return first_index_; }
  int64_t last_index() const { return first_index_ + Size() - 1; }
  int64_t Size() const { return static_cast<int64_t>(deltas_.size()); }

  /// Number of memoized masks currently held (observability/tests).
  size_t MemoSize() const { return memo_entries_; }

  /// Checkpointing: deltas and indices only (the memo is recomputable).
  void Serialize(spe::StateWriter* writer) const;
  Status Restore(spe::StateReader* reader);

 private:
  struct SliceEntry {
    QuerySet delta;
    size_t num_slots = 0;
    /// Memoized masks of this slice: row[d] = CL[i][i - d] for this
    /// slice's index i. Evicted wholesale with the slice.
    std::vector<std::optional<QuerySet>> row;
    /// Delta lives in `run` (keyed by slice index), not in `delta`.
    bool spilled = false;
    storage::SpilledRunPtr run;
  };

  const QuerySet& ComputeMask(int64_t i, int64_t j);
  /// Reloads a spilled delta into the entry (no-op when resident).
  void EnsureDelta(SliceEntry& e, int64_t index);
  /// Read-only delta access that works for spilled entries (Serialize).
  QuerySet DeltaOf(const SliceEntry& e, int64_t index) const;

  SliceEntry& Entry(int64_t index) {
    return deltas_[static_cast<size_t>(index - first_index_)];
  }
  /// The memo cell for CL[i][j], growing slice i's row as needed.
  std::optional<QuerySet>& Cell(int64_t i, int64_t j) {
    SliceEntry& e = Entry(i);
    const size_t d = static_cast<size_t>(i - j);
    if (e.row.size() <= d) e.row.resize(d + 1);
    return e.row[d];
  }

  int64_t first_index_ = 0;
  std::deque<SliceEntry> deltas_;
  size_t memo_entries_ = 0;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_CL_TABLE_H_
