#ifndef ASTREAM_CORE_CL_TABLE_H_
#define ASTREAM_CORE_CL_TABLE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "core/query.h"

namespace astream::core {

/// Changelog-set table over window slices (Sec. 2.1.2, Eq. 1).
///
/// Every slice i carries a delta mask: the changelog-set between slice i-1
/// and slice i (all-ones when no query changed at that boundary). The mask
/// between two slices j <= i is
///
///     CL[i][j] = 1                         if i == j
///     CL[i][j] = CL[i-1][j] & delta[i]     if i >  j        (Eq. 1)
///
/// i.e. bit q survives iff slot q was never touched by a changelog in the
/// span (j, i]. Combining tuples/partials from slices i and j is valid for
/// query slot q only if CL[i][j] has bit q — this is what makes bitwise
/// operations between tuples born under different query populations
/// consistent, including after slot reuse.
///
/// The table memoizes rows with the paper's dynamic program and evicts
/// rows/deltas when slices are evicted.
class ClTable {
 public:
  /// Registers slice `index` (consecutive, increasing) with the delta mask
  /// at its left boundary and the slot-universe size at creation time.
  /// `delta` must be all-ones over the universe if no changelog occurred
  /// at the boundary.
  void AddSlice(int64_t index, QuerySet delta, size_t num_slots);

  /// CL mask between slices i and j (order-insensitive). Both slices must
  /// be registered and not evicted.
  const QuerySet& Mask(int64_t i, int64_t j);

  /// Convenience: Mask(i, j).Test(slot).
  bool SlotUnchanged(int64_t i, int64_t j, int slot) {
    return Mask(i, j).Test(slot);
  }

  /// Drops all state for slices with index < min_index.
  void EvictBelow(int64_t min_index);

  int64_t first_index() const { return first_index_; }
  int64_t last_index() const { return first_index_ + Size() - 1; }
  int64_t Size() const { return static_cast<int64_t>(deltas_.size()); }

  /// Number of memoized masks currently held (observability/tests).
  size_t MemoSize() const { return memo_.size(); }

  /// Checkpointing: deltas and indices only (the memo is recomputable).
  void Serialize(spe::StateWriter* writer) const;
  Status Restore(spe::StateReader* reader);

 private:
  const QuerySet& ComputeMask(int64_t i, int64_t j);

  static uint64_t MemoKey(int64_t i, int64_t j) {
    return (static_cast<uint64_t>(i) << 32) | static_cast<uint32_t>(j);
  }

  struct SliceEntry {
    QuerySet delta;
    size_t num_slots = 0;
  };

  int64_t first_index_ = 0;
  std::deque<SliceEntry> deltas_;
  std::unordered_map<uint64_t, QuerySet> memo_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_CL_TABLE_H_
