#ifndef ASTREAM_CORE_SHARED_SESSION_H_
#define ASTREAM_CORE_SHARED_SESSION_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/changelog.h"
#include "core/registry.h"
#include "core/slice_store.h"

namespace astream::core {

/// The shared session (Sec. 3.1.1): AStream's client module. User requests
/// (query creations and deletions) are batched; a changelog is generated
/// per `batch_size` requests or when `max_timeout_ms` elapses since the
/// first buffered request — never when idle. Slot assignment reuses freed
/// positions (Fig. 3c). Not thread-safe: drive it from the single control
/// thread that also pushes data (markers must be woven into the streams in
/// one order).
class SharedSession {
 public:
  struct Config {
    /// Requests per changelog (paper Sec. 4.4: one hundred).
    size_t batch_size = 100;
    /// Flush deadline after the first buffered request (paper: 1 s).
    TimestampMs max_timeout_ms = 1000;
    /// Active-query count beyond which a mode-switch marker advises
    /// downstream operators to use the flat-list layout (Sec. 3.2.3).
    size_t mode_switch_threshold = 10;
  };

  explicit SharedSession(Config config) : config_(config) {}

  /// Buffers a creation request; the query id is assigned immediately, the
  /// query becomes live when its changelog is applied.
  QueryId Submit(QueryDescriptor desc, TimestampMs now);

  /// Reserves the next query id without buffering a request. Admission
  /// queueing (DESIGN.md §14) hands out the id at Submit time and buffers
  /// the actual creation later, when headroom returns.
  QueryId AllocateId() { return next_query_id_++; }

  /// Buffers a creation request under a pre-allocated id (AllocateId()).
  void SubmitWithId(QueryId id, QueryDescriptor desc, TimestampMs now);

  /// Buffers a deletion request. A query still waiting in the batch is
  /// simply dropped from it.
  Status Cancel(QueryId id, TimestampMs now);

  /// Builds the next changelog if the batch is full, the timeout expired,
  /// or `force` is set (and the batch is non-empty). `now` becomes the
  /// changelog's event time (made strictly increasing internally).
  std::shared_ptr<const Changelog> MaybeFlush(TimestampMs now, bool force);

  /// Non-null when the last flush crossed the mode-switch threshold; the
  /// caller injects a kModeSwitch marker with this mode.
  std::optional<StoreMode> TakeModeSwitch();

  /// Records that `epoch`'s changelog finished deploying (applied by every
  /// router instance). Appends (query id, deployment latency) pairs.
  void OnEpochDeployed(int64_t epoch, TimestampMs now,
                       std::vector<std::pair<QueryId, TimestampMs>>* out);

  size_t num_active() const { return active_.size(); }
  size_t num_pending() const { return pending_.size(); }
  size_t num_slots() const { return slots_.num_slots(); }
  int64_t last_epoch() const { return next_epoch_ - 1; }
  /// Event time of the most recent changelog (kMinTimestamp if none).
  TimestampMs last_marker_time() const { return last_marker_time_; }

  /// Ids of all currently active (deployed or pending-in-batch) queries.
  std::vector<QueryId> ActiveIds() const;

  /// Creation-marker time of a flushed-or-deployed query (kMinTimestamp
  /// when unknown). The de-sharing hand-back anchors the re-admitted
  /// query's window lattice here.
  TimestampMs CreatedAt(QueryId id) const;

  /// Checkpointing of the control plane: slot allocator, active map, id /
  /// epoch counters. Buffered (unflushed) requests are NOT persisted —
  /// they have not been acknowledged, so clients re-submit after recovery
  /// (standard at-least-once request semantics).
  void Serialize(spe::StateWriter* writer) const;
  Status Restore(spe::StateReader* reader);

 private:
  struct Request {
    bool create = true;
    QueryId id = -1;
    QueryDescriptor desc;
    TimestampMs enqueued_at = 0;
  };

  struct ActiveQuery {
    int slot = -1;
    TimestampMs created_at = kMinTimestamp;
  };

  Config config_;
  std::deque<Request> pending_;
  SlotAllocator slots_;
  // Deployed-or-flushed query -> slot + creation-marker time.
  std::map<QueryId, ActiveQuery> active_;
  std::map<QueryId, QueryDescriptor> pending_creates_;
  QueryId next_query_id_ = 1;
  int64_t next_epoch_ = 1;
  TimestampMs last_marker_time_ = kMinTimestamp;
  std::optional<TimestampMs> oldest_pending_since_;
  std::optional<StoreMode> pending_mode_switch_;
  bool advised_list_mode_ = false;
  // epoch -> requests awaiting the deployment ack.
  std::map<int64_t, std::vector<std::pair<QueryId, TimestampMs>>>
      awaiting_ack_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_SHARED_SESSION_H_
