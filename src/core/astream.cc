#include "core/astream.h"

#include <chrono>

#include "common/logging.h"
#include "core/job_config.h"
#include "spe/operators.h"

namespace astream::core {

AStreamJob::AStreamJob(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : WallClock::Default()),
      metrics_(options.enable_metrics),
      trace_(options.enable_trace),
      session_(options.session),
      admission_(options.slo) {
  store_ = options_.checkpoint_store != nullptr ? options_.checkpoint_store
                                                : &checkpoint_store_;
  store_->SetRetention(options_.checkpoint_retention);
  next_checkpoint_epoch_ = options_.first_checkpoint_id;
  // Admission decisions are refined from metered shares, so admission
  // implies metering; metering is attribution into per-query series, so
  // it needs the registry.
  if (options_.slo.enable_admission) options_.meter_costs = true;
  if (!metrics_.enabled()) options_.meter_costs = false;
  if (metrics_.enabled()) {
    m_push_accepted_ = metrics_.GetCounter("job.push_accepted");
    m_push_clamped_ = metrics_.GetCounter("job.push_clamped");
    m_push_backpressure_ = metrics_.GetCounter("job.push_backpressure");
    m_push_shutdown_ = metrics_.GetCounter("job.push_shutdown");
    m_deploy_latency_ = metrics_.GetHistogram("job.deploy_latency_ms");
    if (admission_.enabled()) {
      m_admission_rejected_ = metrics_.GetCounter("admission.rejected");
      m_admission_queued_ = metrics_.GetCounter("admission.queued");
      // Bumped by the isolation manager; created eagerly so the trio is
      // always present in snapshots of an admission-enabled job.
      metrics_.GetCounter("admission.desharings");
    }
  }
}

AStreamJob::~AStreamJob() { Stop(); }

Result<std::unique_ptr<AStreamJob>> AStreamJob::Create(Options options) {
  // One shared validator for every engine knob (see core/job_config.h):
  // the facade and the JobConfig surface reject exactly the same inputs.
  ASTREAM_RETURN_IF_ERROR(astream::ValidateJobOptions(options));
  auto job = std::unique_ptr<AStreamJob>(new AStreamJob(options));
  // Out-of-core engine: only materialized when a budget is in force, so an
  // unbudgeted job is byte-for-byte the pre-storage code path.
  const int64_t budget = storage::ResolveMemoryBudget(options.storage);
  if (budget > 0) {
    ASTREAM_ASSIGN_OR_RETURN(job->spill_space_,
                             storage::SpillSpace::Create(
                                 options.storage.spill_dir));
    job->spill_space_->BindObs(&job->metrics_, &job->trace_);
    job->governor_ = std::make_unique<storage::MemoryGovernor>(
        budget, options.storage.allow_spill);
    // Storage engine v2 (DESIGN.md §13): one job-wide run format — every
    // store (slices, partials, CL deltas) writes through these options.
    storage::RunWriter::Options wo;
    wo.compress = options.storage.compress_spill;
    job->spill_space_->SetWriterOptions(wo);
    if (options.storage.compaction) {
      storage::Compactor::Options copts;
      // Sync (inline, deterministic) whenever the job itself is the
      // deterministic sync runner; the worker thread only exists in
      // threaded mode.
      copts.sync = !options.threaded;
      copts.min_runs = options.storage.compaction_min_runs;
      copts.writer = wo;
      job->compactor_ = std::make_unique<storage::Compactor>(
          job->spill_space_.get(), copts);
    }
  }
  return job;
}

spe::TopologySpec AStreamJob::BuildTopology() {
  spe::TopologySpec spec;
  const int par = options_.parallelism;
  const bool overhead = options_.measure_overhead;

  auto selection_factory = [this, overhead](StreamSide side) {
    return [this, side, overhead](int) -> std::unique_ptr<spe::Operator> {
      SharedSelection::Config cfg;
      cfg.side = side;
      cfg.measure_overhead = overhead;
      cfg.use_predicate_index = options_.use_predicate_index;
      cfg.metrics = &metrics_;
      cfg.meter_costs = options_.meter_costs;
      auto op = std::make_unique<SharedSelection>(cfg);
      {
        std::lock_guard<std::mutex> lock(ops_mutex_);
        selections_.push_back(op.get());
      }
      return op;
    };
  };

  auto shared_config = [this](std::function<bool(const ActiveQuery&)> hosts) {
    SharedOperatorConfig cfg;
    cfg.hosts = std::move(hosts);
    cfg.initial_mode = options_.initial_mode;
    cfg.adaptive_mode = options_.adaptive_mode;
    cfg.metrics = &metrics_;
    cfg.meter_costs = options_.meter_costs;
    cfg.governor = governor_.get();
    cfg.spill_space = spill_space_.get();
    cfg.compactor = compactor_.get();
    cfg.access_aware_eviction =
        governor_ != nullptr && options_.storage.access_aware_eviction;
    cfg.share_arrangements = options_.share_arrangements;
    return cfg;
  };

  switch (options_.topology) {
    case TopologyKind::kAggregation: {
      spe::StageSpec sel;
      sel.name = "shared-selection-a";
      sel.parallelism = par;
      sel.factory = selection_factory(StreamSide::kA);
      const int s_sel = spec.AddStage(std::move(sel));
      input_a_ = spec.AddExternalInput(
          {"stream-a", s_sel, 0, spe::Partitioning::kHash});

      spe::StageSpec agg;
      agg.name = "shared-aggregation";
      agg.parallelism = par;
      agg.factory = [this](int) -> std::unique_ptr<spe::Operator> {
        SharedAggregation::AggConfig cfg;
        cfg.shared.hosts = [](const ActiveQuery& q) {
          return q.desc.kind == QueryKind::kAggregation;
        };
        cfg.shared.initial_mode = options_.initial_mode;
        cfg.shared.adaptive_mode = options_.adaptive_mode;
        cfg.shared.metrics = &metrics_;
        cfg.shared.meter_costs = options_.meter_costs;
        cfg.shared.governor = governor_.get();
        cfg.shared.spill_space = spill_space_.get();
        cfg.shared.compactor = compactor_.get();
        cfg.shared.access_aware_eviction =
            governor_ != nullptr && options_.storage.access_aware_eviction;
        cfg.shared.share_arrangements = options_.share_arrangements;
        cfg.num_ports = 1;
        auto op = std::make_unique<SharedAggregation>(std::move(cfg));
        {
          std::lock_guard<std::mutex> lock(ops_mutex_);
          aggregations_.push_back(op.get());
        }
        return op;
      };
      agg.inputs = {{s_sel, 0, spe::Partitioning::kHash}};
      const int s_agg = spec.AddStage(std::move(agg));

      spe::StageSpec router;
      router.name = "router";
      router.parallelism = par;
      router.num_ports = 2;
      router.is_sink = true;
      router.factory = [this, overhead](int) -> std::unique_ptr<spe::Operator> {
        RouterOperator::Config cfg;
        cfg.num_ports = 2;
        cfg.measure_overhead = overhead;
        cfg.metrics = &metrics_;
        cfg.trace = &trace_;
        cfg.clock = clock_;
        cfg.routes_raw = [](const ActiveQuery& q, int port) {
          return port == 0 && q.desc.kind == QueryKind::kSelection;
        };
        auto op = std::make_unique<RouterOperator>(std::move(cfg));
        {
          std::lock_guard<std::mutex> lock(ops_mutex_);
          routers_.push_back(op.get());
        }
        return op;
      };
      router.inputs = {{s_sel, 0, spe::Partitioning::kHash},
                       {s_agg, 1, spe::Partitioning::kHash}};
      stage_router_ = spec.AddStage(std::move(router));
      break;
    }
    case TopologyKind::kJoin: {
      spe::StageSpec sel_a;
      sel_a.name = "shared-selection-a";
      sel_a.parallelism = par;
      sel_a.factory = selection_factory(StreamSide::kA);
      const int s_sel_a = spec.AddStage(std::move(sel_a));
      input_a_ = spec.AddExternalInput(
          {"stream-a", s_sel_a, 0, spe::Partitioning::kHash});

      spe::StageSpec sel_b;
      sel_b.name = "shared-selection-b";
      sel_b.parallelism = par;
      sel_b.factory = selection_factory(StreamSide::kB);
      const int s_sel_b = spec.AddStage(std::move(sel_b));
      input_b_ = spec.AddExternalInput(
          {"stream-b", s_sel_b, 0, spe::Partitioning::kHash});

      spe::StageSpec join;
      join.name = "shared-join";
      join.parallelism = par;
      join.num_ports = 2;
      join.factory = [this, shared_config](int)
          -> std::unique_ptr<spe::Operator> {
        auto op = std::make_unique<SharedJoin>(
            shared_config([](const ActiveQuery& q) {
              return q.desc.kind == QueryKind::kJoin;
            }));
        {
          std::lock_guard<std::mutex> lock(ops_mutex_);
          joins_.push_back(op.get());
        }
        return op;
      };
      join.inputs = {{s_sel_a, 0, spe::Partitioning::kHash},
                     {s_sel_b, 1, spe::Partitioning::kHash}};
      const int s_join = spec.AddStage(std::move(join));

      spe::StageSpec router;
      router.name = "router";
      router.parallelism = par;
      router.num_ports = 2;
      router.is_sink = true;
      router.factory = [this, overhead](int) -> std::unique_ptr<spe::Operator> {
        RouterOperator::Config cfg;
        cfg.num_ports = 2;
        cfg.measure_overhead = overhead;
        cfg.metrics = &metrics_;
        cfg.trace = &trace_;
        cfg.clock = clock_;
        cfg.routes_raw = [](const ActiveQuery& q, int port) {
          if (port == 0) return q.desc.kind == QueryKind::kSelection;
          return q.desc.kind == QueryKind::kJoin;
        };
        auto op = std::make_unique<RouterOperator>(std::move(cfg));
        {
          std::lock_guard<std::mutex> lock(ops_mutex_);
          routers_.push_back(op.get());
        }
        return op;
      };
      router.inputs = {{s_sel_a, 0, spe::Partitioning::kHash},
                       {s_join, 1, spe::Partitioning::kHash}};
      stage_router_ = spec.AddStage(std::move(router));
      break;
    }
    case TopologyKind::kComplex: {
      const int stages = options_.max_join_stages;
      spe::StageSpec sel_a;
      sel_a.name = "shared-selection-a";
      sel_a.parallelism = par;
      sel_a.factory = selection_factory(StreamSide::kA);
      const int s_sel_a = spec.AddStage(std::move(sel_a));
      input_a_ = spec.AddExternalInput(
          {"stream-a", s_sel_a, 0, spe::Partitioning::kHash});

      spe::StageSpec sel_b;
      sel_b.name = "shared-selection-b";
      sel_b.parallelism = par;
      sel_b.factory = selection_factory(StreamSide::kB);
      const int s_sel_b = spec.AddStage(std::move(sel_b));
      input_b_ = spec.AddExternalInput(
          {"stream-b", s_sel_b, 0, spe::Partitioning::kHash});

      std::vector<int> join_stages;
      int left_input = s_sel_a;
      for (int k = 1; k <= stages; ++k) {
        spe::StageSpec join;
        join.name = "shared-join-" + std::to_string(k);
        join.parallelism = par;
        join.num_ports = 2;
        join.factory = [this, shared_config, k](int)
            -> std::unique_ptr<spe::Operator> {
          auto op = std::make_unique<SharedJoin>(
              shared_config([k](const ActiveQuery& q) {
                return q.desc.kind == QueryKind::kComplex &&
                       q.desc.join_depth >= k;
              }));
          {
            std::lock_guard<std::mutex> lock(ops_mutex_);
            joins_.push_back(op.get());
          }
          return op;
        };
        join.inputs = {{left_input, 0, spe::Partitioning::kHash},
                       {s_sel_b, 1, spe::Partitioning::kHash}};
        const int s_join = spec.AddStage(std::move(join));
        join_stages.push_back(s_join);
        left_input = s_join;
      }

      spe::StageSpec agg;
      agg.name = "shared-aggregation";
      agg.parallelism = par;
      agg.num_ports = stages;
      agg.factory = [this, stages](int) -> std::unique_ptr<spe::Operator> {
        SharedAggregation::AggConfig cfg;
        cfg.shared.hosts = [](const ActiveQuery& q) {
          return q.desc.kind == QueryKind::kComplex;
        };
        cfg.shared.initial_mode = options_.initial_mode;
        cfg.shared.adaptive_mode = options_.adaptive_mode;
        cfg.shared.metrics = &metrics_;
        cfg.shared.meter_costs = options_.meter_costs;
        cfg.shared.governor = governor_.get();
        cfg.shared.spill_space = spill_space_.get();
        cfg.shared.compactor = compactor_.get();
        cfg.shared.access_aware_eviction =
            governor_ != nullptr && options_.storage.access_aware_eviction;
        cfg.shared.share_arrangements = options_.share_arrangements;
        cfg.num_ports = stages;
        cfg.port_filter = [](const ActiveQuery& q, int port) {
          return q.desc.join_depth == port + 1;
        };
        auto op = std::make_unique<SharedAggregation>(std::move(cfg));
        {
          std::lock_guard<std::mutex> lock(ops_mutex_);
          aggregations_.push_back(op.get());
        }
        return op;
      };
      for (int k = 0; k < stages; ++k) {
        agg.inputs.push_back(
            {join_stages[k], k, spe::Partitioning::kHash});
      }
      const int s_agg = spec.AddStage(std::move(agg));

      spe::StageSpec router;
      router.name = "router";
      router.parallelism = par;
      router.num_ports = 2;
      router.is_sink = true;
      router.factory = [this, overhead](int) -> std::unique_ptr<spe::Operator> {
        RouterOperator::Config cfg;
        cfg.num_ports = 2;
        cfg.measure_overhead = overhead;
        cfg.metrics = &metrics_;
        cfg.trace = &trace_;
        cfg.clock = clock_;
        cfg.routes_raw = [](const ActiveQuery& q, int port) {
          return port == 0 && q.desc.kind == QueryKind::kSelection;
        };
        auto op = std::make_unique<RouterOperator>(std::move(cfg));
        {
          std::lock_guard<std::mutex> lock(ops_mutex_);
          routers_.push_back(op.get());
        }
        return op;
      };
      router.inputs = {{s_sel_a, 0, spe::Partitioning::kHash},
                       {s_agg, 1, spe::Partitioning::kHash}};
      stage_router_ = spec.AddStage(std::move(router));
      break;
    }
    case TopologyKind::kMultiway: {
      // DESIGN.md §15: one shared selection per external stream, feeding
      // the n-ary shared join on port s. Stream 0's selection doubles as
      // the host of plain selection queries (mirroring side A elsewhere).
      const int streams = options_.num_streams;
      std::vector<int> sel_stages;
      for (int s = 0; s < streams; ++s) {
        spe::StageSpec sel;
        sel.name = "shared-selection-s" + std::to_string(s);
        sel.parallelism = par;
        sel.factory = [this, overhead,
                       s](int) -> std::unique_ptr<spe::Operator> {
          SharedSelection::Config cfg;
          cfg.side = StreamSide::kA;
          cfg.stream = s;
          cfg.hosts = [s](const ActiveQuery& q) {
            if (q.desc.kind == QueryKind::kMultiJoin) {
              return q.desc.UsesStream(s);
            }
            return s == 0 && q.desc.kind == QueryKind::kSelection;
          };
          cfg.measure_overhead = overhead;
          cfg.use_predicate_index = options_.use_predicate_index;
          cfg.metrics = &metrics_;
          cfg.meter_costs = options_.meter_costs;
          auto op = std::make_unique<SharedSelection>(cfg);
          {
            std::lock_guard<std::mutex> lock(ops_mutex_);
            selections_.push_back(op.get());
          }
          return op;
        };
        const int s_sel = spec.AddStage(std::move(sel));
        sel_stages.push_back(s_sel);
        inputs_.push_back(spec.AddExternalInput(
            {"stream-" + std::to_string(s), s_sel, 0,
             spe::Partitioning::kHash}));
      }
      input_a_ = inputs_[0];
      input_b_ = inputs_.size() > 1 ? inputs_[1] : -1;

      spe::StageSpec join;
      join.name = "shared-multiway-join";
      join.parallelism = par;
      join.num_ports = streams;
      join.factory = [this, shared_config,
                      streams](int) -> std::unique_ptr<spe::Operator> {
        auto op = std::make_unique<SharedMultiwayJoin>(
            shared_config([](const ActiveQuery& q) {
              return q.desc.kind == QueryKind::kMultiJoin;
            }),
            streams);
        {
          std::lock_guard<std::mutex> lock(ops_mutex_);
          mjoins_.push_back(op.get());
        }
        return op;
      };
      for (int s = 0; s < streams; ++s) {
        join.inputs.push_back({sel_stages[s], s, spe::Partitioning::kHash});
      }
      const int s_join = spec.AddStage(std::move(join));

      spe::StageSpec router;
      router.name = "router";
      router.parallelism = par;
      router.num_ports = 2;
      router.is_sink = true;
      router.factory = [this, overhead](int) -> std::unique_ptr<spe::Operator> {
        RouterOperator::Config cfg;
        cfg.num_ports = 2;
        cfg.measure_overhead = overhead;
        cfg.metrics = &metrics_;
        cfg.trace = &trace_;
        cfg.clock = clock_;
        cfg.routes_raw = [](const ActiveQuery& q, int port) {
          if (port == 0) return q.desc.kind == QueryKind::kSelection;
          return q.desc.kind == QueryKind::kMultiJoin;
        };
        auto op = std::make_unique<RouterOperator>(std::move(cfg));
        {
          std::lock_guard<std::mutex> lock(ops_mutex_);
          routers_.push_back(op.get());
        }
        return op;
      };
      router.inputs = {{sel_stages[0], 0, spe::Partitioning::kHash},
                       {s_join, 1, spe::Partitioning::kHash}};
      stage_router_ = spec.AddStage(std::move(router));
      break;
    }
  }
  if (inputs_.empty()) {
    // Two-stream topologies: the generic Push(stream, ...) surface maps
    // stream 0 -> A and stream 1 -> B.
    inputs_.push_back(input_a_);
    if (input_b_ >= 0) inputs_.push_back(input_b_);
  }

  total_instances_ = 0;
  for (const auto& s : spec.stages()) total_instances_ += s.parallelism;
  return spec;
}

Status AStreamJob::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  spe::TopologySpec spec = BuildTopology();
  auto sink = [this](int stage, int instance, const spe::StreamElement& el) {
    HandleSink(stage, instance, el);
  };
  auto snapshot = [this](int64_t id, int stage, int instance,
                         std::vector<uint8_t> state) {
    store_->AddOperatorState(id, stage, instance, std::move(state));
    // +1: the shared session's control-plane snapshot (stage -1).
    store_->MaybeComplete(id, total_instances_ + 1);
  };
  // Per-edge batch-size histograms, resolved by stage index so the push
  // observer is a plain array lookup + lock-free record.
  edge_batch_hists_.clear();
  if (metrics_.enabled()) {
    for (const auto& stage : spec.stages()) {
      edge_batch_hists_.push_back(
          metrics_.GetHistogram("edge." + stage.name + ".batch_size"));
    }
  }
  source_batches_.clear();
  source_batches_.resize(spec.external_inputs().size());
  source_batch_start_.assign(spec.external_inputs().size(), 0);
  if (options_.threaded) {
    auto threaded = std::make_unique<spe::ThreadedRunner>(
        std::move(spec), sink, snapshot, options_.channel_capacity,
        options_.batch_size, options_.use_spsc_rings);
    if (!edge_batch_hists_.empty()) {
      threaded->SetEdgePushObserver([this](int stage, size_t batch) {
        edge_batch_hists_[stage]->Record(static_cast<int64_t>(batch));
      });
    }
    runner_ = std::move(threaded);
  } else {
    runner_ = std::make_unique<spe::SyncRunner>(std::move(spec), sink,
                                                snapshot);
  }
  ASTREAM_RETURN_IF_ERROR(runner_->Start());
  if (compactor_ != nullptr) compactor_->Start();  // no-op in sync mode
  started_ = true;
  return Status::OK();
}

void AStreamJob::HandleSink(int stage, int instance,
                            const spe::StreamElement& el) {
  (void)stage;
  (void)instance;
  switch (el.kind) {
    case spe::ElementKind::kRecord: {
      const spe::Record& record = el.record;
      if (record.channel < 0) return;  // unrouted (should not happen)
      qos_.RecordOutput(record.channel, record.event_time,
                        clock_->NowMs());
      ResultCallback cb;
      {
        std::lock_guard<std::mutex> lock(callback_mutex_);
        cb = result_callback_;
      }
      if (cb) cb(record.channel, record);
      break;
    }
    case spe::ElementKind::kMarker: {
      if (el.marker.kind != spe::MarkerKind::kChangelog) return;
      std::vector<std::pair<QueryId, TimestampMs>> latencies;
      {
        std::lock_guard<std::mutex> lock(session_mutex_);
        const int acks = ++epoch_acks_[el.marker.epoch];
        if (acks < options_.parallelism) return;
        epoch_acks_.erase(el.marker.epoch);
        session_.OnEpochDeployed(el.marker.epoch, clock_->NowMs(),
                                 &latencies);
      }
      for (const auto& [id, latency] : latencies) {
        qos_.RecordDeployment(id, latency);
        if (m_deploy_latency_ != nullptr) m_deploy_latency_->Record(latency);
        if (obs::QuerySeries* s = metrics_.SeriesFor(id)) {
          s->deploy_latency_ms.Record(latency);
        }
        trace_.Record(obs::TraceEventKind::kDeployAck, id, latency);
      }
      ack_cv_.notify_all();
      break;
    }
    default:
      break;
  }
}

TimestampMs AStreamJob::ClampToMarkers(TimestampMs event_time) {
  // A tuple pushed after a changelog marker must not sort before it in
  // event time (the alignment invariant operators rely on). Markers are
  // stamped at wall-time + 1, so a tuple generated in the same millisecond
  // is nudged onto the marker's time.
  std::lock_guard<std::mutex> lock(session_mutex_);
  return std::max(event_time, session_.last_marker_time());
}

PushResult AStreamJob::PushA(TimestampMs event_time, spe::Row row) {
  return PushTo(input_a_, event_time, std::move(row));
}

PushResult AStreamJob::PushB(TimestampMs event_time, spe::Row row) {
  return PushTo(input_b_, event_time, std::move(row));
}

PushResult AStreamJob::Push(int stream, TimestampMs event_time,
                            spe::Row row) {
  if (stream < 0 || stream >= static_cast<int>(inputs_.size())) {
    if (m_push_shutdown_ != nullptr) m_push_shutdown_->Add();
    return PushResult::kShutdown;
  }
  return PushTo(inputs_[stream], event_time, std::move(row));
}

PushResult AStreamJob::PushTo(int input, TimestampMs event_time,
                              spe::Row row) {
  if (input < 0 || !started_ || finished_ || runner_->Failed()) {
    // Permanent refusal: there is nothing to retry against. A poisoned
    // runner refuses immediately instead of blocking on dead consumers.
    if (m_push_shutdown_ != nullptr) m_push_shutdown_->Add();
    return PushResult::kShutdown;
  }
  if (governor_ != nullptr && governor_->ShouldBackpressure()) {
    // Budget exceeded with spilling disabled: refuse (retryable) instead
    // of growing state without bound. The caller decides whether to wait
    // for windows to expire or to drop.
    if (m_push_backpressure_ != nullptr) m_push_backpressure_->Add();
    return PushResult::kBackpressure;
  }
  const TimestampMs pushed_time = ClampToMarkers(event_time);

  bool ok = true;
  if (options_.batch_size <= 1) {
    // Status-quo element-at-a-time path: no buffering, no demux scratch.
    ok = runner_->Push(input, spe::StreamElement::MakeRecord(
                                  pushed_time, std::move(row)));
  } else {
    // Source-side batch former: buffer the tuple, ship the run as one
    // ElementBatch once it is full or the linger window elapsed in event
    // time.
    spe::ElementBatch& buf = source_batches_[input];
    if (buf.empty()) source_batch_start_[input] = pushed_time;
    buf.Add(spe::StreamElement::MakeRecord(pushed_time, std::move(row)));
    if (buf.size() >= options_.batch_size ||
        pushed_time - source_batch_start_[input] >=
            options_.batch_linger_ms) {
      ok = runner_->PushBatch(input, std::move(buf));
      buf.Clear();
    }
  }
  if (!ok) {
    // The runner refuses only when cancelled — shutdown, not backpressure
    // (blocking channel pushes absorb transient pressure).
    if (m_push_shutdown_ != nullptr) m_push_shutdown_->Add();
    return PushResult::kShutdown;
  }
  if (pushed_time != event_time) {
    if (m_push_clamped_ != nullptr) m_push_clamped_->Add();
    return PushResult::kLateClamped;
  }
  if (m_push_accepted_ != nullptr) m_push_accepted_->Add();
  return PushResult::kAccepted;
}

void AStreamJob::FlushSourceBatches() {
  if (runner_ == nullptr) return;
  for (size_t in = 0; in < source_batches_.size(); ++in) {
    if (source_batches_[in].empty()) continue;
    runner_->PushBatch(static_cast<int>(in),
                       std::move(source_batches_[in]));
    source_batches_[in].Clear();
  }
}

void AStreamJob::PushWatermark(TimestampMs watermark) {
  FlushSourceBatches();
  for (int input : inputs_) {
    runner_->Push(input, spe::StreamElement::MakeWatermark(watermark));
  }
}

Status AStreamJob::ValidateQuery(const QueryDescriptor& desc) const {
  switch (options_.topology) {
    case TopologyKind::kAggregation:
      if (desc.kind != QueryKind::kSelection &&
          desc.kind != QueryKind::kAggregation) {
        return Status::InvalidArgument(
            "aggregation topology accepts selection/aggregation queries");
      }
      break;
    case TopologyKind::kJoin:
      if (desc.kind != QueryKind::kSelection &&
          desc.kind != QueryKind::kJoin) {
        return Status::InvalidArgument(
            "join topology accepts selection/join queries");
      }
      if (desc.kind == QueryKind::kJoin && !desc.window.IsTimeWindow()) {
        return Status::InvalidArgument(
            "windowed joins require time windows");
      }
      break;
    case TopologyKind::kComplex:
      if (desc.kind != QueryKind::kSelection &&
          desc.kind != QueryKind::kComplex) {
        return Status::InvalidArgument(
            "complex topology accepts selection/complex queries");
      }
      if (desc.kind == QueryKind::kComplex) {
        if (!desc.window.IsTimeWindow()) {
          return Status::InvalidArgument(
              "complex queries require time windows");
        }
        if (desc.join_depth < 1 ||
            desc.join_depth > options_.max_join_stages) {
          return Status::InvalidArgument("join_depth out of range");
        }
      }
      break;
    case TopologyKind::kMultiway:
      if (desc.kind != QueryKind::kSelection &&
          desc.kind != QueryKind::kMultiJoin) {
        return Status::InvalidArgument(
            "multiway topology accepts selection/multijoin queries");
      }
      if (desc.kind == QueryKind::kMultiJoin) {
        if (!desc.window.IsTimeWindow()) {
          return Status::InvalidArgument(
              "multiway joins require time windows");
        }
        if (desc.join_inputs.size() < 2 ||
            desc.join_inputs.size() >
                static_cast<size_t>(options_.num_streams)) {
          return Status::InvalidArgument(
              "multiway join needs 2..num_streams input legs");
        }
        for (const JoinInput& in : desc.join_inputs) {
          if (in.stream < 0 || in.stream >= options_.num_streams) {
            return Status::InvalidArgument(
                "multiway join leg reads a stream the job does not have");
          }
        }
      }
      break;
  }
  if (desc.HasWindow() && desc.window.IsTimeWindow()) {
    if (desc.window.length <= 0 || desc.window.slide <= 0 ||
        desc.window.slide > desc.window.length) {
      return Status::InvalidArgument("bad window length/slide");
    }
  }
  if (desc.HasWindow() && !desc.window.IsTimeWindow() &&
      desc.window.gap <= 0) {
    return Status::InvalidArgument("bad session gap");
  }
  return Status::OK();
}

Result<QueryId> AStreamJob::Submit(const QueryDescriptor& desc) {
  ASTREAM_ASSIGN_OR_RETURN(SubmitOutcome outcome, SubmitWithOutcome(desc));
  if (outcome.decision == AdmissionDecision::kRejected) {
    return Status::AdmissionRejected(outcome.reason);
  }
  return outcome.id;
}

Result<AStreamJob::SubmitOutcome> AStreamJob::SubmitWithOutcome(
    const QueryDescriptor& desc) {
  if (!started_) {
    return Status::FailedPrecondition(
        "Submit() before Start(): the job is not running");
  }
  if (finished_) {
    return Status::FailedPrecondition(
        "Submit() on a finished job: it was stopped or drained "
        "(FinishAndWait()/Stop()) and accepts no new queries");
  }
  ASTREAM_RETURN_IF_ERROR(ValidateQuery(desc));
  SubmitOutcome outcome;
  if (admission_.enabled()) {
    const AdmissionController::Decision d =
        admission_.Decide(desc, admission_queue_.size(), LiveP99());
    outcome.predicted_cost = d.predicted_cost;
    outcome.reason = d.reason;
    if (d.action == AdmissionDecision::kRejected) {
      outcome.decision = AdmissionDecision::kRejected;
      if (m_admission_rejected_ != nullptr) m_admission_rejected_->Add();
      return outcome;
    }
    if (d.action == AdmissionDecision::kQueued) {
      outcome.decision = AdmissionDecision::kQueued;
      {
        // The id is allocated now so the caller can Cancel a queued query;
        // the descriptor deploys from MaybeAdmitQueued.
        std::lock_guard<std::mutex> lock(session_mutex_);
        outcome.id = session_.AllocateId();
      }
      admission_queue_.push_back(QueuedSubmit{outcome.id, desc});
      if (m_admission_queued_ != nullptr) m_admission_queued_->Add();
      return outcome;
    }
  }
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    outcome.id = session_.Submit(desc, clock_->NowMs());
  }
  admission_.OnAdmitted(outcome.id, desc);
  trace_.Record(obs::TraceEventKind::kSubmit, outcome.id);
  Pump(false);
  return outcome;
}

Status AStreamJob::Cancel(QueryId id) {
  if (!started_) {
    return Status::FailedPrecondition(
        "Cancel() before Start(): the job is not running");
  }
  if (finished_) {
    return Status::FailedPrecondition(
        "Cancel() on a finished job: it was stopped or drained");
  }
  // A queued query never reached the session: drop it from the queue.
  for (auto it = admission_queue_.begin(); it != admission_queue_.end();
       ++it) {
    if (it->id == id) {
      admission_queue_.erase(it);
      return Status::OK();
    }
  }
  Status s;
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    s = session_.Cancel(id, clock_->NowMs());
  }
  if (s.ok()) {
    admission_.OnCancelled(id);
    trace_.Record(obs::TraceEventKind::kCancel, id);
    Pump(false);
  }
  return s;
}

void AStreamJob::MaybeAdmitQueued() {
  if (admission_queue_.empty()) return;
  const double p99 = LiveP99();
  while (!admission_queue_.empty()) {
    const QueuedSubmit& front = admission_queue_.front();
    if (!admission_.HasHeadroom(front.desc, p99)) break;
    {
      std::lock_guard<std::mutex> lock(session_mutex_);
      session_.SubmitWithId(front.id, front.desc, clock_->NowMs());
    }
    admission_.OnAdmitted(front.id, front.desc);
    trace_.Record(obs::TraceEventKind::kSubmit, front.id);
    admission_queue_.pop_front();
  }
}

double AStreamJob::LiveP99() const {
  return static_cast<double>(
      qos_.TakeSnapshot().event_time_latency.Percentile(99));
}

int AStreamJob::Pump(bool force) {
  // Queued queries first: an admit folds into the same changelog flush.
  MaybeAdmitQueued();
  // Changelog markers are batch boundaries: every tuple accepted before
  // the marker must enter the stream before it.
  FlushSourceBatches();
  int injected = 0;
  while (true) {
    std::shared_ptr<const Changelog> log;
    std::optional<StoreMode> mode_switch;
    {
      std::lock_guard<std::mutex> lock(session_mutex_);
      log = session_.MaybeFlush(clock_->NowMs(), force);
      if (log != nullptr) mode_switch = session_.TakeModeSwitch();
    }
    if (log == nullptr) break;
    // Recorded before the injection: in sync mode the marker propagates
    // (and deploy acks fire) inside InjectMarker itself.
    trace_.Record(obs::TraceEventKind::kChangelogFlush, -1, log->epoch);
    runner_->InjectMarker(Changelog::MakeMarker(log));
    ++injected;
    if (mode_switch.has_value()) {
      auto payload = std::make_shared<ModeSwitchPayload>();
      payload->mode = *mode_switch;
      spe::ControlMarker marker;
      marker.kind = spe::MarkerKind::kModeSwitch;
      marker.epoch = next_mode_epoch_++;
      marker.time = log->time;
      marker.payload = std::move(payload);
      runner_->InjectMarker(marker);
    }
  }
  return injected;
}

bool AStreamJob::WaitForDeployment(TimestampMs timeout_ms) {
  std::unique_lock<std::mutex> lock(session_mutex_);
  return ack_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                          [&] { return epoch_acks_.empty(); });
}

int64_t AStreamJob::TriggerCheckpoint(std::map<int, int64_t> source_offsets,
                                      int64_t id) {
  // Checkpoint barriers are batch boundaries too.
  FlushSourceBatches();
  if (id == 0) {
    id = next_checkpoint_epoch_++;
  } else if (id >= next_checkpoint_epoch_) {
    // Replay re-triggering a logged checkpoint: keep the counter monotonic.
    next_checkpoint_epoch_ = id + 1;
  }
  store_->BeginCheckpoint(id, std::move(source_offsets));
  // Control-plane snapshot: the shared session's slot allocator and id /
  // epoch counters, taken atomically with the barrier injection so no
  // changelog can slip between them.
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    spe::StateWriter writer;
    session_.Serialize(&writer);
    store_->AddOperatorState(id, kSessionStateStage, 0, writer.TakeBuffer());
    store_->MaybeComplete(id, total_instances_ + 1);
    spe::ControlMarker marker;
    marker.kind = spe::MarkerKind::kCheckpointBarrier;
    marker.epoch = id;
    marker.time = clock_->NowMs();
    runner_->InjectMarker(marker);
  }
  trace_.Record(obs::TraceEventKind::kCheckpoint, -1, id);
  return id;
}

Status AStreamJob::RestoreFrom(
    const spe::CheckpointStore::Checkpoint& checkpoint) {
  auto it = checkpoint.operator_state.find(
      spe::CheckpointStore::StateKey(kSessionStateStage, 0));
  if (it != checkpoint.operator_state.end()) {
    std::lock_guard<std::mutex> lock(session_mutex_);
    spe::StateReader reader(it->second);
    ASTREAM_RETURN_IF_ERROR(session_.Restore(&reader));
  }
  return runner_->Restore(checkpoint);
}

Status AStreamJob::FinishAndWait() {
  if (!started_ || finished_) return Status::OK();
  FlushSourceBatches();
  Pump(true);
  runner_->FinishAndWait();
  // All task threads are parked: drain + join the compaction worker so
  // any in-flight fold settles its ticket before teardown.
  if (compactor_ != nullptr) compactor_->Stop();
  finished_ = true;
  trace_.Record(obs::TraceEventKind::kFinish);
  return runner_->Failure();
}

Status AStreamJob::Stop() {
  if (!started_ || finished_) {
    return runner_ != nullptr ? runner_->Failure() : Status::OK();
  }
  runner_->Cancel();
  if (compactor_ != nullptr) compactor_->Stop();
  finished_ = true;
  return runner_->Failure();
}

Status AStreamJob::Health() const {
  if (runner_ == nullptr) return Status::OK();
  return runner_->Failure();
}

bool AStreamJob::Failed() const {
  return runner_ != nullptr && runner_->Failed();
}

void AStreamJob::DeclareFailed(const Status& status) {
  auto* threaded = dynamic_cast<spe::ThreadedRunner*>(runner_.get());
  if (threaded != nullptr) threaded->DeclareFailed(status);
}

std::vector<spe::ThreadedRunner::TaskHealthSample>
AStreamJob::TaskHealth() const {
  auto* threaded = dynamic_cast<spe::ThreadedRunner*>(runner_.get());
  if (threaded == nullptr) return {};
  return threaded->SampleTaskHealth();
}

void AStreamJob::SetResultCallback(ResultCallback callback) {
  std::lock_guard<std::mutex> lock(callback_mutex_);
  result_callback_ = std::move(callback);
}

AStreamJob::OperatorStats AStreamJob::CollectStats() const {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  OperatorStats s;
  for (const SharedSelection* sel : selections_) {
    s.queryset_nanos += sel->queryset_nanos();
  }
  for (const RouterOperator* r : routers_) {
    s.fanout_nanos += r->fanout_nanos();
    s.router_records_out += r->records_routed();
    s.router_rows_shared += r->rows_shared();
    s.router_rows_copied += r->rows_copied();
  }
  for (const SharedJoin* j : joins_) {
    s.bitset_ops += j->bitset_ops();
    s.join_pairs_computed += j->pairs_computed();
    s.join_pairs_reused += j->pairs_reused();
    s.records_late += j->records_late();
    s.state_arena_bytes += j->state_arena_bytes();
    s.reload_saves += j->reload_saves();
    // The join-pair memo is the join side of the arrangement layer.
    s.arrange_memo_hits += j->pairs_reused();
    s.arrange_memo_misses += j->pairs_computed();
    const FactorRegistry::Stats& fs = j->tracker().factors().stats();
    s.factor_rewrites += fs.rewrites;
    s.factor_reuses += fs.reuses;
    s.factor_fallbacks += fs.fallbacks;
  }
  for (const SharedMultiwayJoin* m : mjoins_) {
    s.bitset_ops += m->bitset_ops();
    s.records_late += m->records_late();
    s.state_arena_bytes += m->state_arena_bytes();
    s.reload_saves += m->reload_saves();
    s.mjoin_chains_computed += m->chains_computed();
    s.mjoin_chains_reused += m->chains_reused();
    // The chain memo is the multiway analogue of the join-pair memo.
    s.arrange_memo_hits += m->chains_reused();
    s.arrange_memo_misses += m->chains_computed();
    const SubJoinRegistry::Stats& ss = m->registry().stats();
    s.subjoins_built += ss.built;
    s.subjoins_attached += ss.attached;
    s.subjoin_nodes += static_cast<int64_t>(m->registry().NumNodes());
  }
  for (const SharedAggregation* a : aggregations_) {
    s.bitset_ops += a->bitset_ops();
    s.records_late += a->records_late();
    s.state_arena_bytes += a->state_arena_bytes();
    s.reload_saves += a->reload_saves();
    s.arrange_memo_hits += a->arrangement().memo_hits();
    s.arrange_memo_misses += a->arrangement().memo_misses();
    s.arrange_memo_bytes +=
        static_cast<int64_t>(a->arrangement().memo_bytes());
    const FactorRegistry::Stats& fs = a->tracker().factors().stats();
    s.factor_rewrites += fs.rewrites;
    s.factor_reuses += fs.reuses;
    s.factor_fallbacks += fs.fallbacks;
  }
  if (runner_ != nullptr) {
    s.selection_records_in = runner_->StageRecordsIn(0);
    s.selection_records_out = runner_->StageRecordsOut(0);
  }
  return s;
}

std::map<QueryId, int64_t> AStreamJob::ComputeStateShares() const {
  std::map<QueryId, int64_t> shares;
  std::lock_guard<std::mutex> lock(ops_mutex_);
  for (const SharedJoin* j : joins_) j->AppendStateShares(&shares);
  for (const SharedMultiwayJoin* m : mjoins_) m->AppendStateShares(&shares);
  for (const SharedAggregation* a : aggregations_) {
    a->AppendStateShares(&shares);
  }
  return shares;
}

std::map<QueryId, int64_t> AStreamJob::MeteredCosts() {
  std::map<QueryId, int64_t> recent;
  if (!options_.meter_costs || !metrics_.enabled()) return recent;
  const std::map<QueryId, int64_t> state = ComputeStateShares();
  std::vector<QueryId> active;
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    active = session_.ActiveIds();
  }
  std::map<QueryId, int64_t> cumulative;
  int64_t recent_total = 0;
  for (QueryId id : active) {
    obs::QuerySeries* s = metrics_.SeriesFor(id);
    if (s == nullptr) continue;
    const auto st = state.find(id);
    const int64_t state_units =
        st == state.end() ? 0 : st->second / 1024;
    if (st != state.end()) s->cost_state_bytes.Set(st->second);
    // Rows and CPU are monotone counters — delta since the previous call;
    // state is an instantaneous footprint — counted as-is.
    const int64_t accum =
        s->cost_rows.Value() + s->cost_cpu_nanos.Value() / 1000;
    cumulative[id] = accum;
    const auto prev = metered_prev_.find(id);
    const int64_t delta =
        accum - (prev == metered_prev_.end() ? 0 : prev->second);
    recent[id] = delta + state_units;
    recent_total += recent[id];
  }
  metered_prev_ = std::move(cumulative);
  // Live refinement: re-apportion the fleet's predicted cost by the
  // observed shares (skipped on an idle interval — no signal).
  if (admission_.enabled() && recent_total > 0) {
    for (const auto& [id, cost] : recent) {
      admission_.ObserveMeteredShare(
          id, static_cast<double>(cost) / recent_total);
    }
  }
  return recent;
}

size_t AStreamJob::QueuedElements() const {
  auto* threaded = dynamic_cast<spe::ThreadedRunner*>(runner_.get());
  return threaded == nullptr ? 0 : threaded->TotalQueuedElements();
}

obs::MetricsRegistry::Snapshot AStreamJob::MetricsSnapshot() {
  if (metrics_.enabled()) {
    {
      std::lock_guard<std::mutex> lock(session_mutex_);
      metrics_.GetGauge("session.active_queries")
          ->Set(static_cast<int64_t>(session_.num_active()));
      metrics_.GetGauge("session.pending_queries")
          ->Set(static_cast<int64_t>(session_.num_pending()));
      metrics_.GetGauge("session.num_slots")
          ->Set(static_cast<int64_t>(session_.num_slots()));
    }
    {
      // Data-plane sharing drill-down: how often the router's per-query
      // fan-out shared a CoW row vs. materialized one, and the slice-store
      // arena footprint.
      const OperatorStats s = CollectStats();
      metrics_.GetGauge("router.rows_shared")->Set(s.router_rows_shared);
      metrics_.GetGauge("router.rows_copied")->Set(s.router_rows_copied);
      metrics_.GetGauge("state.arena_bytes")->Set(s.state_arena_bytes);
      // Cross-window sharing drill-down (DESIGN.md §12): arrangement memo
      // effectiveness and the slicer's factor-rewrite decisions.
      metrics_.GetGauge("arrange.memo_hits")->Set(s.arrange_memo_hits);
      metrics_.GetGauge("arrange.memo_misses")->Set(s.arrange_memo_misses);
      metrics_.GetGauge("arrange.memo_bytes")->Set(s.arrange_memo_bytes);
      metrics_.GetGauge("slicer.factor_rewrites")->Set(s.factor_rewrites);
      metrics_.GetGauge("slicer.factor_reuses")->Set(s.factor_reuses);
      metrics_.GetGauge("slicer.factor_fallbacks")->Set(s.factor_fallbacks);
      if (options_.topology == TopologyKind::kMultiway) {
        // Multiway sharing drill-down (DESIGN.md §15): chain-memo
        // effectiveness and common-subexpression attachment.
        metrics_.GetGauge("mjoin.chains_computed")
            ->Set(s.mjoin_chains_computed);
        metrics_.GetGauge("mjoin.chains_reused")
            ->Set(s.mjoin_chains_reused);
        metrics_.GetGauge("mjoin.subjoins_built")->Set(s.subjoins_built);
        metrics_.GetGauge("mjoin.subjoins_attached")
            ->Set(s.subjoins_attached);
        metrics_.GetGauge("mjoin.subjoin_nodes")->Set(s.subjoin_nodes);
      }
      metrics_.GetGauge("state.checkpoints_retained")
          ->Set(static_cast<int64_t>(store_->NumRetained()));
      if (governor_ != nullptr) {
        metrics_.GetGauge("storage.resident_bytes")
            ->Set(governor_->total_resident());
        metrics_.GetGauge("storage.budget_bytes")->Set(governor_->budget());
        metrics_.GetGauge("storage.reload_saves")->Set(s.reload_saves);
      }
      if (compactor_ != nullptr) {
        metrics_.GetGauge("storage.compaction_runs")
            ->Set(compactor_->runs_compacted());
        metrics_.GetGauge("storage.compaction_ms")
            ->Set(compactor_->total_ms());
      }
      if (spill_space_ != nullptr) {
        // On-disk / raw bytes of everything ever spilled, in basis points
        // (10000 = stored uncompressed).
        const int64_t raw = spill_space_->total_spill_raw_bytes();
        const int64_t disk = spill_space_->total_spill_bytes();
        metrics_.GetGauge("storage.compressed_ratio_bp")
            ->Set(raw > 0 ? disk * 10000 / raw : 10000);
      }
    }
    if (options_.meter_costs) {
      // Per-query cost attribution (DESIGN.md §14): refresh the state-byte
      // apportionment, then mirror each active query's meters as
      // query.<id>.cost_* gauges so one snapshot carries the whole bill.
      const std::map<QueryId, int64_t> state = ComputeStateShares();
      std::vector<QueryId> active;
      {
        std::lock_guard<std::mutex> lock(session_mutex_);
        active = session_.ActiveIds();
      }
      for (QueryId id : active) {
        obs::QuerySeries* s = metrics_.SeriesFor(id);
        if (s == nullptr) continue;
        const auto st = state.find(id);
        s->cost_state_bytes.Set(st == state.end() ? 0 : st->second);
        const std::string prefix = "query." + std::to_string(id) + ".";
        metrics_.GetGauge(prefix + "cost_rows")->Set(s->cost_rows.Value());
        metrics_.GetGauge(prefix + "cost_cpu_nanos")
            ->Set(s->cost_cpu_nanos.Value());
        metrics_.GetGauge(prefix + "cost_state_bytes")
            ->Set(s->cost_state_bytes.Value());
      }
    }
    if (admission_.enabled()) {
      metrics_.GetGauge("admission.queued_now")
          ->Set(static_cast<int64_t>(admission_queue_.size()));
      metrics_.GetGauge("admission.active_queries")
          ->Set(static_cast<int64_t>(admission_.num_admitted()));
      metrics_.GetGauge("admission.predicted_cost_x1000")
          ->Set(static_cast<int64_t>(admission_.TotalPredicted() * 1000));
    }
    if (runner_ != nullptr) {
      auto* threaded = dynamic_cast<spe::ThreadedRunner*>(runner_.get());
      metrics_.GetGauge("runner.queued_elements")
          ->Set(threaded == nullptr
                    ? 0
                    : static_cast<int64_t>(threaded->TotalQueuedElements()));
      for (int s = 0; s < runner_->NumStages(); ++s) {
        const std::string prefix = "stage." + runner_->StageName(s) + ".";
        metrics_.GetGauge(prefix + "records_in")
            ->Set(runner_->StageRecordsIn(s));
        metrics_.GetGauge(prefix + "records_out")
            ->Set(runner_->StageRecordsOut(s));
        if (threaded != nullptr) {
          metrics_.GetGauge(prefix + "queue_depth")
              ->Set(static_cast<int64_t>(threaded->StageQueuedElements(s)));
          if (threaded->use_spsc_rings()) {
            // Fill fraction in [0, 1], exported in basis points so the
            // integer gauge keeps two decimal digits of resolution.
            metrics_
                .GetGauge("edge." + runner_->StageName(s) +
                          ".ring_occupancy_bp")
                ->Set(static_cast<int64_t>(
                    threaded->StageRingOccupancy(s) * 10000.0));
          }
        }
      }
    }
  }
  return metrics_.TakeSnapshot();
}

}  // namespace astream::core
