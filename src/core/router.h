#ifndef ASTREAM_CORE_ROUTER_H_
#define ASTREAM_CORE_ROUTER_H_

#include <atomic>
#include <functional>
#include <vector>

#include "common/clock.h"
#include "core/changelog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spe/operator.h"

namespace astream::core {

/// The router (Sec. 3.1.6): the terminal shared operator. Every incoming
/// record is shipped to the output channel of each query encoded in its
/// query-set — this is the one place AStream copies data (Sec. 3.2.2).
/// Records that already carry an explicit channel id (results of windowed
/// queries, stamped by the shared join/aggregation) are forwarded without
/// slot resolution, which keeps routing correct across slot reuse.
class RouterOperator : public spe::Operator {
 public:
  struct Config {
    /// Which queries receive *raw* (un-windowed) tuples from `port` — e.g.
    /// selection-only queries on the raw-tuple port. Defaults to
    /// selection queries on every port.
    std::function<bool(const ActiveQuery&, int port)> routes_raw;
    int num_ports = 1;
    /// When true, per-record copy time is accumulated (Fig. 18).
    bool measure_overhead = false;
    /// Per-query series sink: records emitted and event-time latency are
    /// attributed here, at the terminal operator. nullptr or a disabled
    /// registry costs one branch per record.
    obs::MetricsRegistry* metrics = nullptr;
    /// Receives the per-query first-result lifecycle event (may be null).
    obs::TraceSink* trace = nullptr;
    /// Wall clock used for event-time latency (defaults to WallClock); jobs
    /// pass their own clock so tests with ManualClock stay deterministic.
    Clock* clock = nullptr;
  };

  explicit RouterOperator(Config config);

  int num_ports() const override { return config_.num_ports; }
  void ProcessRecord(int port, spe::Record record,
                     spe::Collector* out) override;
  /// Vectorized path: fans out the whole batch in one pass with one
  /// overhead-timing sample instead of one per tuple.
  void ProcessBatch(int port, spe::RecordBatch& records,
                    spe::Collector* out) override;
  void OnMarker(const spe::ControlMarker& marker,
                spe::Collector* out) override;
  Status SnapshotState(spe::StateWriter* writer) override;
  Status RestoreState(spe::StateReader* reader) override;

  const ActiveQueryTable& table() const { return table_; }

  /// Total nanoseconds spent fanning records out to query channels.
  /// Historically `copy_nanos`: with copy-on-write rows the fan-out ships
  /// a shared payload (a refcount bump), so this measures routing + tag
  /// resolution, not data copying — see rows_shared()/rows_copied() for
  /// how often each actually happens.
  int64_t fanout_nanos() const {
    return fanout_nanos_.load(std::memory_order_relaxed);
  }
  int64_t records_routed() const { return records_routed_; }
  /// Fan-out rows shipped by reference (CoW share — the Sec. 3.2.2 "copy"
  /// that no longer copies).
  int64_t rows_shared() const { return rows_shared_; }
  /// Fan-out rows that materialized a fresh payload (empty/degenerate rows).
  int64_t rows_copied() const { return rows_copied_; }

 private:
  /// Counts one shipped record and its event-time latency against `id`.
  void NoteEmit(QueryId id, obs::QuerySeries* series, TimestampMs event_time);
  /// Ships one record to its query channels (shared by both process paths).
  void RouteOne(int port, spe::Record record, spe::Collector* out);
  void RebuildSlotSeries();

  Config config_;
  ActiveQueryTable table_;
  // Id of the last aligned checkpoint barrier; stamped onto every routed
  // output (Record::epoch) for recovery-time output dedup.
  int64_t epoch_ = 0;
  int64_t records_routed_ = 0;
  int64_t rows_shared_ = 0;
  int64_t rows_copied_ = 0;
  std::atomic<int64_t> fanout_nanos_{0};

  bool metrics_on_ = false;
  obs::SeriesCache series_cache_;
  std::vector<obs::QuerySeries*> slot_series_;  // raw path, rebuilt per changelog
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_ROUTER_H_
