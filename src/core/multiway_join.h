#ifndef ASTREAM_CORE_MULTIWAY_JOIN_H_
#define ASTREAM_CORE_MULTIWAY_JOIN_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/arrangement.h"
#include "core/join_graph.h"
#include "core/shared_operator.h"

namespace astream::core {

/// The shared multi-way join (DESIGN.md §15): one operator hosting every
/// kMultiJoin query, with per-stream state in TupleArrangements (one per
/// input port) and flat n-way window semantics — a window [ws, we) of a
/// query over streams S emits one row per combination of key-equal tuples,
/// one from each stream of S, all inside the window; the output column
/// order is the query's declared leg order and the result time is we - 1
/// (exactly a cascade of binary joins evaluated inside one window
/// instance, which the equivalence tests pin it to).
///
/// Sharing: each query slot is assigned a probe chain (a permutation of
/// its streams) by the SubJoinRegistry + JoinCostModel; chains reuse the
/// longest already-materialized sub-join prefix, and chain-prefix results
/// are memoized per (prefix, window interval) so the common sub-join of
/// many queries is computed once per interval. Tags follow Eq. 1: a
/// combination's query-set is the AND of its members' tag sets masked
/// through the CL table over the slice span — order-insensitive, so probe
/// order never changes which rows a query receives.
class SharedMultiwayJoin : public SharedWindowedOperator,
                           public storage::SpillClient {
 public:
  SharedMultiwayJoin(SharedOperatorConfig config, int num_streams);
  ~SharedMultiwayJoin() override;

  int num_ports() const override { return num_streams_; }
  void ProcessRecord(int port, spe::Record record,
                     spe::Collector* out) override;
  void ProcessBatch(int port, spe::RecordBatch& records,
                    spe::Collector* out) override;
  Status SnapshotState(spe::StateWriter* writer) override;
  Status RestoreState(spe::StateReader* reader) override;

  /// Observability / micro_mjoin.
  int64_t chains_computed() const { return chains_computed_; }
  int64_t chains_reused() const { return chains_reused_; }
  int64_t bitset_ops() const { return bitset_ops_; }
  int64_t records_late() const { return records_late_; }
  int64_t state_arena_bytes() const { return state_arena_bytes_; }
  int64_t reload_saves() const { return reload_saves_; }
  const SubJoinRegistry& registry() const { return registry_; }
  const JoinCostModel& cost_model() const { return cost_model_; }

  /// storage::SpillClient: releases the chain memo first (derived state),
  /// then spills the least-read / coldest slice across every port.
  size_t SpillOnce() override;

 protected:
  void OnQueryCreated(const ActiveQuery& query) override;
  void OnQueryDeleted(const DrainingQuery& draining) override;
  void TriggerWindows(TimestampMs start, TimestampMs end,
                      const std::vector<TriggeredQuery>& queries,
                      spe::Collector* out) override;
  void OnSlicesEvicted(const std::vector<int64_t>& indices) override;
  void OnModeSwitch(StoreMode mode) override;
  void OnWatermarkTail(TimestampMs watermark, spe::Collector* out) override;
  int64_t ResidentStateBytes() const override { return state_arena_bytes_; }

 private:
  /// A query's evaluation plan: the registry-assigned probe chain and the
  /// declared leg order (which fixes output columns).
  struct Plan {
    std::vector<int> chain;
    std::vector<int> declared;
  };

  /// One partial join result: key-equal rows from chain[0..k], their
  /// combined CL-masked tag set, and the slice span they cover.
  struct Combination {
    std::vector<spe::Row> parts;
    QuerySet tags;
    int64_t key = 0;
    int64_t lo = 0;  // min slice index
    int64_t hi = 0;  // max slice index
  };

  /// Per-port window index for one trigger interval: key -> entries.
  struct IndexEntry {
    spe::Row row;
    QuerySet tags;
    int64_t slice = 0;
  };
  using WindowIndex = std::unordered_map<spe::Value, std::vector<IndexEntry>>;

  /// Memoized chain-prefix results, keyed by (prefix, interval).
  struct MemoEntry {
    std::vector<Combination> combos;
    int64_t min_slice = TupleArrangement::kNoVersion;
    size_t bytes = 0;
  };
  using ChainKey =
      std::pair<std::vector<int>, std::pair<TimestampMs, TimestampMs>>;

  Plan PlanFor(const ActiveQuery& query);
  const Plan* ActivePlan(int slot) const;

  /// The window index of `port` over `slices` (built lazily per trigger).
  const WindowIndex& IndexFor(int port, const std::vector<SliceInfo>& slices,
                              std::map<int, WindowIndex>* cache);

  /// The combinations of chain[0..len) inside [start, end). `*computed`
  /// reports whether this call did top-level work or hit the memo.
  const std::vector<Combination>& EvalChain(
      const std::vector<int>& chain, size_t len, TimestampMs start,
      TimestampMs end, const std::vector<SliceInfo>& slices,
      std::map<int, WindowIndex>* index_cache, bool* computed);

  size_t ReleaseChainMemo();
  void RefreshArenaBytes();
  void EnforceBudget();
  void RebuildPlans();

  const int num_streams_;
  std::vector<TupleArrangement> ports_;
  SubJoinRegistry registry_;
  JoinCostModel cost_model_;
  /// slot -> plan (active queries; rebuilt from the registry on restore).
  std::map<int, Plan> plans_;
  /// id -> plan of deleted-but-draining queries (serialized: the registry
  /// refs were already released at deletion).
  std::map<QueryId, Plan> draining_plans_;
  std::map<ChainKey, MemoEntry> chain_memo_;
  size_t chain_memo_bytes_ = 0;

  int64_t chains_computed_ = 0;
  int64_t chains_reused_ = 0;
  int64_t bitset_ops_ = 0;
  int64_t records_late_ = 0;
  int64_t state_arena_bytes_ = 0;
  int64_t reload_saves_ = 0;
  QuerySet scratch_tags_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_MULTIWAY_JOIN_H_
