#ifndef ASTREAM_CORE_TRIGGER_H_
#define ASTREAM_CORE_TRIGGER_H_

#include <optional>
#include <queue>
#include <vector>

#include "core/query.h"
#include "spe/state.h"

namespace astream::core {

/// A scheduled window evaluation: query `id` (in `slot`) triggers its
/// window [window_start, window_end) once the watermark reaches
/// window_end. Each query keeps exactly one in-flight entry (its next
/// window); the consumer reschedules the following window after firing.
struct TriggerEntry {
  TimestampMs window_end = 0;
  TimestampMs window_start = 0;
  int slot = -1;
  QueryId id = -1;

  bool operator>(const TriggerEntry& o) const {
    // Min-heap by end time; ties broken by slot for determinism.
    if (window_end != o.window_end) return window_end > o.window_end;
    if (window_start != o.window_start) return window_start > o.window_start;
    return slot > o.slot;
  }
};

/// Min-heap of per-query next-window triggers.
class TriggerQueue {
 public:
  void Schedule(TriggerEntry entry) { heap_.push(entry); }

  /// Pops the earliest entry whose window end is <= watermark.
  std::optional<TriggerEntry> PopDue(TimestampMs watermark) {
    if (heap_.empty() || heap_.top().window_end > watermark) {
      return std::nullopt;
    }
    TriggerEntry e = heap_.top();
    heap_.pop();
    return e;
  }

  size_t Size() const { return heap_.size(); }

  void Serialize(spe::StateWriter* writer) const {
    // Copy out (priority_queue has no iteration); order is irrelevant.
    auto copy = heap_;
    writer->WriteU64(copy.size());
    while (!copy.empty()) {
      const TriggerEntry& e = copy.top();
      writer->WriteI64(e.window_end);
      writer->WriteI64(e.window_start);
      writer->WriteI64(e.slot);
      writer->WriteI64(e.id);
      copy.pop();
    }
  }

  Status Restore(spe::StateReader* reader) {
    heap_ = {};
    const uint64_t n = reader->ReadU64();
    for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
      TriggerEntry e;
      e.window_end = reader->ReadI64();
      e.window_start = reader->ReadI64();
      e.slot = static_cast<int>(reader->ReadI64());
      e.id = reader->ReadI64();
      heap_.push(e);
    }
    return reader->Ok() ? Status::OK()
                        : Status::Internal("bad trigger queue snapshot");
  }

 private:
  std::priority_queue<TriggerEntry, std::vector<TriggerEntry>,
                      std::greater<TriggerEntry>>
      heap_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_TRIGGER_H_
