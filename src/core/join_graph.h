#ifndef ASTREAM_CORE_JOIN_GRAPH_H_
#define ASTREAM_CORE_JOIN_GRAPH_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "spe/state.h"

namespace astream::core {

/// Join-graph planning for the shared multi-way join (DESIGN.md §15, after
/// Dossinger & Michel, PAPERS.md): a cost model that orders probe chains by
/// live per-stream rates, and a refcounted registry of materialized
/// sub-join chains so queries whose join graphs contain an
/// already-materialized sub-join attach to it instead of building their
/// own (the multi-way analogue of FactorRegistry::AcquireFor).

/// Per-stream insert-rate estimator feeding probe-order selection. The
/// operator reports per-port insert deltas from its ingress path; each
/// watermark folds the pending deltas into an EWMA. Until the model has
/// seen kWarmupInserts rows in total, Order() falls back to the static
/// shape (ascending stream id) so plans are deterministic from the first
/// submit.
class JoinCostModel {
 public:
  /// EWMA smoothing per fold (alpha) and the warm-up row threshold.
  static constexpr double kAlpha = 0.2;
  static constexpr int64_t kWarmupInserts = 1024;

  explicit JoinCostModel(int num_streams)
      : pending_(num_streams, 0), rate_(num_streams, 0.0) {}

  /// Ingress path: `count` rows arrived on `stream` since the last fold.
  void ObserveInserts(int stream, int64_t count) {
    pending_[stream] += count;
    total_observed_ += count;
  }

  /// Folds pending deltas into the per-stream EWMA (called per watermark,
  /// the operator's natural epoch).
  void Tick() {
    for (size_t s = 0; s < pending_.size(); ++s) {
      rate_[s] = kAlpha * static_cast<double>(pending_[s]) +
                 (1.0 - kAlpha) * rate_[s];
      pending_[s] = 0;
    }
  }

  bool WarmedUp() const { return total_observed_ >= kWarmupInserts; }
  double RateEstimate(int stream) const { return rate_[stream]; }
  int64_t total_observed() const { return total_observed_; }

  /// Probe order over `streams`: cheapest (lowest estimated rate) first,
  /// the classic smallest-relation-first heuristic; ties and the cold
  /// start resolve to ascending stream id. Chain order never changes which
  /// records a query emits (tags and key-equality are order-insensitive),
  /// only how much intermediate state the chain carries.
  std::vector<int> Order(std::vector<int> streams) const;

  void Serialize(spe::StateWriter* writer) const;
  Status Restore(spe::StateReader* reader);

 private:
  std::vector<int64_t> pending_;
  std::vector<double> rate_;
  int64_t total_observed_ = 0;
};

/// Refcounted registry of materialized sub-join chains (probe-order
/// prefixes of length >= 2). AcquireFor assigns a query slot its full
/// probe chain: it first looks for the longest already-materialized chain
/// whose stream set is contained in the query's, attaches to it
/// (refcounted), and extends it with the remaining streams in cost order.
/// Release (on cancel / de-sharing drain) decrements every prefix and
/// drops nodes at refcount zero. Like FactorRegistry, by_slot_ is the
/// serialized source of truth; nodes_ is rebuilt from it on restore.
class SubJoinRegistry {
 public:
  struct Stats {
    int64_t built = 0;     // chains that had to materialize a new sub-join
    int64_t attached = 0;  // chains that reused an existing sub-join prefix
  };

  /// Assigns `slot` a chain over exactly the streams of `cost_order`
  /// (cost_order = JoinCostModel::Order of the query's streams). Returns
  /// the chain: a shared prefix (if one exists) followed by the remaining
  /// streams in cost order.
  const std::vector<int>& AcquireFor(int slot, const std::vector<int>& cost_order);

  /// Releases slot's chain (query cancelled or de-shared).
  void Release(int slot);

  /// The chain assigned to `slot`, or nullptr.
  const std::vector<int>* ChainFor(int slot) const {
    auto it = by_slot_.find(slot);
    return it == by_slot_.end() ? nullptr : &it->second;
  }

  /// Refcount of a materialized sub-join node (0 when absent).
  int NodeRefs(const std::vector<int>& prefix) const {
    auto it = nodes_.find(prefix);
    return it == nodes_.end() ? 0 : it->second;
  }

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumSlots() const { return by_slot_.size(); }
  const Stats& stats() const { return stats_; }

  void Serialize(spe::StateWriter* writer) const;
  Status Restore(spe::StateReader* reader);

 private:
  /// Materialized sub-join chain prefixes (length >= 2) -> refcount.
  std::map<std::vector<int>, int> nodes_;
  /// Deterministic slot -> full chain assignment (serialized).
  std::map<int, std::vector<int>> by_slot_;
  Stats stats_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_JOIN_GRAPH_H_
