#ifndef ASTREAM_CORE_SHARED_SELECTION_H_
#define ASTREAM_CORE_SHARED_SELECTION_H_

#include <atomic>
#include <functional>

#include "core/changelog.h"
#include "obs/metrics.h"
#include "spe/operator.h"

namespace astream::core {

/// Which side of a two-stream topology a shared selection serves: side A
/// evaluates each query's `select_a` predicates, side B `select_b`.
enum class StreamSide : uint8_t { kA, kB };

/// The shared selection operator (Sec. 3.1.2): evaluates the predicates of
/// every active query against each tuple and appends the resulting
/// query-set as the tuple's tag column. One operator serves all queries;
/// the active set updates via changelog markers.
class SharedSelection : public spe::Operator {
 public:
  struct Config {
    StreamSide side = StreamSide::kA;
    /// Multiway topologies (DESIGN.md §15): when >= 0, this selection
    /// serves external stream `stream` — a kMultiJoin query's predicates
    /// come from its leg on that stream (other kinds fall back to the
    /// side-based select_a/select_b). Counters use `selection.s<k>.*`.
    int stream = -1;
    /// Which queries tag on this stream (e.g. side B only hosts queries
    /// with a join). Defaults: side A hosts all, side B hosts joins.
    std::function<bool(const ActiveQuery&)> hosts;
    /// When true, per-tuple query-set generation time is accumulated
    /// (Fig. 18 overhead breakdown).
    bool measure_overhead = false;
    /// Shared predicate index: each *distinct* predicate is evaluated once
    /// per tuple and failing predicates subtract their queries' bits —
    /// queries with identical predicates share the evaluation (the
    /// paper's future-work direction of grouping similar queries).
    /// When false, every query's conjunction is evaluated independently.
    bool use_predicate_index = true;
    /// Named-counter sink (`selection.<side>.records_{in,out,dropped}`).
    /// The selection deliberately records NO per-query series: attributing
    /// a tuple would mean walking its query-set per record, which breaks
    /// the hot-path budget; per-query emission is attributed at the router
    /// instead. nullptr or a disabled registry costs one branch per record.
    obs::MetricsRegistry* metrics = nullptr;
    /// Cost metering (DESIGN.md §14) overrides the no-per-query-series
    /// rule above: each matched query's `cost_rows` is bumped per tuple
    /// (a walk of the tuple's set bits). Off by default — only isolation-
    /// enabled jobs pay it.
    bool meter_costs = false;
  };

  explicit SharedSelection(Config config);

  void ProcessRecord(int port, spe::Record record,
                     spe::Collector* out) override;
  /// Vectorized path: evaluates all predicates over the batch reusing one
  /// scratch query-set (no per-tuple bitset construction for dropped
  /// tuples) and batching the counter/overhead bookkeeping.
  void ProcessBatch(int port, spe::RecordBatch& records,
                    spe::Collector* out) override;
  void OnMarker(const spe::ControlMarker& marker,
                spe::Collector* out) override;
  Status SnapshotState(spe::StateWriter* writer) override;
  Status RestoreState(spe::StateReader* reader) override;

  const ActiveQueryTable& table() const { return table_; }

  /// Total nanoseconds spent generating query-sets (measure_overhead).
  int64_t queryset_nanos() const {
    return queryset_nanos_.load(std::memory_order_relaxed);
  }
  int64_t records_dropped() const { return records_dropped_; }
  /// Distinct predicates in the shared index (observability/tests).
  size_t IndexSize() const { return index_.size(); }

 private:
  const std::vector<Predicate>& PredicatesOf(const ActiveQuery& q) const {
    if (config_.stream >= 0 && q.desc.kind == QueryKind::kMultiJoin) {
      if (const JoinInput* in = q.desc.InputFor(config_.stream)) {
        return in->select;
      }
      return kNoPredicates;
    }
    return config_.side == StreamSide::kA ? q.desc.select_a
                                          : q.desc.select_b;
  }

  static const std::vector<Predicate> kNoPredicates;

  QuerySet ComputeTags(const spe::Row& row) const;
  /// Builds the tags into `tags`, reusing its capacity (batch hot path).
  void ComputeTagsInto(const spe::Row& row, QuerySet* tags) const;
  void RebuildIndex();
  /// Bills one row to every query matched in scratch_tags_ (meter_costs).
  void MeterMatchedRows() {
    scratch_tags_.ForEachSetBit([&](size_t slot) {
      if (slot < slot_series_.size() && slot_series_[slot] != nullptr) {
        slot_series_[slot]->cost_rows.Add();
      }
    });
  }

  Config config_;
  ActiveQueryTable table_;

  // Shared predicate index: distinct predicate -> bits of the queries
  // whose conjunction contains it; `hosted_mask_` covers all queries that
  // tag on this side (those with an empty conjunction always match).
  struct IndexedPredicate {
    Predicate predicate;
    QuerySet queries;
  };
  std::vector<IndexedPredicate> index_;
  QuerySet hosted_mask_;

  int64_t records_dropped_ = 0;
  std::atomic<int64_t> queryset_nanos_{0};
  // Scratch query-set reused across the tuples of one batch.
  QuerySet scratch_tags_;

  // Cached registry pointers; recording is lock-free (see obs/metrics.h).
  bool metrics_on_ = false;
  bool meter_on_ = false;
  obs::Counter* m_records_in_ = nullptr;
  obs::Counter* m_records_out_ = nullptr;
  obs::Counter* m_records_dropped_ = nullptr;
  // Slot -> series for cost_rows attribution (meter_costs only); rebuilt
  // on every changelog so the hot path never hashes.
  std::vector<obs::QuerySeries*> slot_series_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_SHARED_SELECTION_H_
