#ifndef ASTREAM_CORE_QUERY_H_
#define ASTREAM_CORE_QUERY_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/clock.h"
#include "spe/aggregate.h"
#include "spe/row.h"
#include "spe/state.h"
#include "spe/window.h"

namespace astream::core {

/// A query-set: the set of queries (by slot index) interested in a tuple
/// (Sec. 2.1.1). Encoded as a bitset; slots of deleted queries are reused
/// for new queries (Fig. 3c).
using QuerySet = DynamicBitset;

/// Globally unique, never reused query identity. Slots (bit positions) are
/// reused; ids are not.
using QueryId = int64_t;

/// Comparison operators of generated selection predicates (Sec. 4.2.2).
enum class CmpOp : uint8_t { kLt, kGt, kEq, kLe, kGe };

const char* CmpOpName(CmpOp op);

/// One comparison `row[column] op constant`.
struct Predicate {
  int column = 1;
  CmpOp op = CmpOp::kLt;
  spe::Value constant = 0;

  bool Eval(const spe::Row& row) const {
    const spe::Value v = row.At(column);
    switch (op) {
      case CmpOp::kLt:
        return v < constant;
      case CmpOp::kGt:
        return v > constant;
      case CmpOp::kEq:
        return v == constant;
      case CmpOp::kLe:
        return v <= constant;
      case CmpOp::kGe:
        return v >= constant;
    }
    return false;
  }

  std::string ToString() const;

  bool operator==(const Predicate& o) const {
    return column == o.column && op == o.op && constant == o.constant;
  }
  bool operator<(const Predicate& o) const {
    if (column != o.column) return column < o.column;
    if (op != o.op) return op < o.op;
    return constant < o.constant;
  }
};

/// True iff all predicates hold (conjunction; empty list accepts all).
bool EvalConjunction(const std::vector<Predicate>& predicates,
                     const spe::Row& row);

/// Query families supported by AStream (Sec. 1.3): selections, windowed
/// aggregations, windowed joins, complex pipelines of cascaded binary
/// joins followed by an aggregation (Sec. 4.7), and flat n-ary multi-way
/// joins over 2..kMaxJoinDepth distinct input streams (DESIGN.md §15).
enum class QueryKind : uint8_t {
  kSelection,
  kAggregation,
  kJoin,
  kComplex,
  kMultiJoin,
};

const char* QueryKindName(QueryKind kind);

/// One input leg of a kMultiJoin query: which stream it reads, the join-key
/// columns (all legs must agree on arity; the engine currently requires the
/// key to be column 0, the row key), and per-leg selection predicates.
struct JoinInput {
  int stream = 0;
  std::vector<int> key = {0};
  std::vector<Predicate> select;

  bool operator==(const JoinInput& o) const {
    return stream == o.stream && key == o.key && select == o.select;
  }
};

/// Full description of one user query. Immutable once submitted.
struct QueryDescriptor {
  QueryKind kind = QueryKind::kSelection;
  /// Selection predicates on stream A (all kinds) and stream B (joins).
  std::vector<Predicate> select_a;
  std::vector<Predicate> select_b;
  /// Window of the aggregation / join stages (ignored for selections).
  spe::WindowSpec window;
  /// Aggregation (kAggregation and kComplex).
  spe::AggSpec agg;
  /// Number of chained join stages for kComplex (1..kMaxJoinDepth).
  int join_depth = 1;
  /// Window-lattice anchor override (kMinTimestamp = unset). Normally a
  /// query's windows are anchored at its creation-marker time; a query
  /// re-admitted after de-sharing (DESIGN.md §14) must instead stay on the
  /// lattice of its *original* creation so the dedicated pipeline's
  /// windows and the shared plan's windows tile without overlap. When set,
  /// the first window starts at AlignForward(marker, align_origin, slide).
  TimestampMs align_origin = kMinTimestamp;
  /// Input legs of a kMultiJoin query, in the user's declared order (which
  /// fixes the output column order). Empty for every other kind.
  std::vector<JoinInput> join_inputs;

  bool HasWindow() const { return kind != QueryKind::kSelection; }
  bool HasJoin() const {
    return kind == QueryKind::kJoin || kind == QueryKind::kComplex;
  }
  bool HasAgg() const {
    return kind == QueryKind::kAggregation || kind == QueryKind::kComplex;
  }

  /// True iff a kMultiJoin query reads `stream` on one of its legs (always
  /// false for other kinds; their streams are fixed by the topology).
  bool UsesStream(int stream) const {
    for (const JoinInput& in : join_inputs) {
      if (in.stream == stream) return true;
    }
    return false;
  }
  /// The leg reading `stream`, or nullptr.
  const JoinInput* InputFor(int stream) const {
    for (const JoinInput& in : join_inputs) {
      if (in.stream == stream) return &in;
    }
    return nullptr;
  }

  std::string ToString() const;

  void Serialize(spe::StateWriter* writer) const;
  static QueryDescriptor Deserialize(spe::StateReader* reader);
};

/// Maximum join chain length of complex queries (Sec. 4.7: 1 <= n <= 5).
inline constexpr int kMaxJoinDepth = 5;

}  // namespace astream::core

#endif  // ASTREAM_CORE_QUERY_H_
