#ifndef ASTREAM_CORE_RECOVERY_H_
#define ASTREAM_CORE_RECOVERY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/query.h"
#include "spe/element.h"

namespace astream::core {

/// Exactly-once output filter across crash recoveries (the paper's
/// Sec. 3.3 replay path, hardened for repeated failures).
///
/// AStream is deterministic in event time: restoring operator state from
/// checkpoint C and replaying the source log from C's offsets regenerates
/// exactly the multiset of per-query outputs the pre-crash run produced
/// after barrier C. The router stamps every output with its checkpoint
/// epoch (Record::epoch = last aligned barrier id). This filter turns that
/// into a delivery guarantee:
///
///  - Every admitted output is remembered in a `delivered` multiset keyed
///    by content [query, event_time, columns], bucketed by epoch.
///  - On restore from checkpoint C, the delivered multiset becomes the
///    `pending regeneration` multiset P (entries with epoch < C are
///    dropped — those outputs predate barrier C, are covered by the
///    restored state, and will NOT be regenerated). Replayed outputs that
///    match an entry of P consume it and are suppressed; everything else
///    is delivered. Totals therefore equal the fault-free run exactly: no
///    loss, no duplicates — even across crashes during recovery.
///  - When checkpoint C completes, entries with epoch < C can never be
///    regenerated again and are pruned, which bounds the store to the
///    outputs of the last checkpoint interval.
///
/// Thread-safe: Admit is called from sink (router task) threads.
class EpochOutputDedup {
 public:
  /// Filters one output delivery. True = deliver to the user callback;
  /// false = replay-regenerated duplicate, suppress.
  bool Admit(QueryId id, const spe::Record& record);

  /// A restore from checkpoint `checkpoint_id` is about to replay. Folds
  /// the delivered multiset into the pending multiset (see class comment).
  void OnRestore(int64_t checkpoint_id);

  /// Checkpoint `checkpoint_id` completed: prune entries older than it.
  void OnCheckpointComplete(int64_t checkpoint_id);

  int64_t duplicates_suppressed() const;
  /// Entries awaiting regeneration (nonzero only mid-replay).
  int64_t pending() const;
  /// Entries in the delivered store (bounded by checkpoint pruning).
  int64_t tracked() const;

 private:
  // Content key of one output; counts per epoch so pruning stays exact.
  using Key = std::vector<int64_t>;  // [query, event_time, columns...]
  using EpochCounts = std::map<int64_t, int64_t>;  // epoch -> count
  using Multiset = std::map<Key, EpochCounts>;

  static Key MakeKey(QueryId id, const spe::Record& record);
  static void Prune(Multiset* set, int64_t min_epoch);
  static int64_t Count(const Multiset& set);

  mutable std::mutex mutex_;
  Multiset delivered_;
  Multiset pending_;
  int64_t suppressed_ = 0;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_RECOVERY_H_
