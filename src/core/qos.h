#ifndef ASTREAM_CORE_QOS_H_
#define ASTREAM_CORE_QOS_H_

#include <map>
#include <mutex>
#include <vector>

#include "core/query.h"

namespace astream::core {

/// Streaming latency statistics with bounded memory: exact count/mean/
/// min/max plus percentile estimates from a capped sample buffer (every
/// k-th observation once the cap is reached).
class LatencyStats {
 public:
  void Add(int64_t value);

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  /// p in [0, 100]; approximate beyond kMaxSamples observations.
  int64_t Percentile(double p) const;

 private:
  static constexpr size_t kMaxSamples = 65536;

  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  int64_t stride_ = 1;
  mutable std::vector<int64_t> samples_;
};

/// QoS monitor (Sec. 3.4): collects, per ad-hoc environment metric of
/// Sec. 4.3, the measurements a service owner needs — event-time latency
/// of emitted results, query deployment latency, and per-query output
/// counts. Thread-safe (sinks run on task threads).
class QosMonitor {
 public:
  /// A result for `query` with event time `event_time` left the system at
  /// wall time `now`.
  void RecordOutput(QueryId query, TimestampMs event_time, TimestampMs now);

  /// A create/delete request for `query` took `latency` ms to deploy.
  void RecordDeployment(QueryId query, TimestampMs latency);

  struct Snapshot {
    LatencyStats event_time_latency;
    LatencyStats deployment_latency;
    int64_t total_outputs = 0;
    std::map<QueryId, int64_t> outputs_per_query;
    /// Deployment acks in arrival order (Fig. 10 timelines).
    std::vector<std::pair<QueryId, TimestampMs>> deployment_events;
  };
  Snapshot TakeSnapshot() const;

  int64_t total_outputs() const;
  int64_t OutputsOf(QueryId query) const;

 private:
  mutable std::mutex mutex_;
  LatencyStats event_time_latency_;
  LatencyStats deployment_latency_;
  int64_t total_outputs_ = 0;
  std::map<QueryId, int64_t> outputs_per_query_;
  std::vector<std::pair<QueryId, TimestampMs>> deployment_events_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_QOS_H_
