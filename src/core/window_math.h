#ifndef ASTREAM_CORE_WINDOW_MATH_H_
#define ASTREAM_CORE_WINDOW_MATH_H_

#include "common/clock.h"

namespace astream::core {

/// Window-boundary and slice math shared by the slicer, the factor
/// registry, and both shared operators. SharedJoin and SharedAggregation
/// used to re-derive this independently (slice containment checks, next-
/// edge arithmetic); drift between the copies would silently mis-slice, so
/// the arithmetic lives here once, with direct unit tests.

/// One runtime slice: a half-open interval [start, end) of event time with
/// a dense, monotonically increasing index.
struct SliceInfo {
  TimestampMs start = 0;
  TimestampMs end = 0;
  int64_t index = 0;
};

/// Non-negative remainder of t mod m (m > 0), correct for negative t.
inline TimestampMs FloorMod(TimestampMs t, TimestampMs m) {
  const TimestampMs r = t % m;
  return r < 0 ? r + m : r;
}

/// gcd(|a|, |b|); gcd(x, 0) == x.
inline TimestampMs WindowGcd(TimestampMs a, TimestampMs b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const TimestampMs r = a % b;
    a = b;
    b = r;
  }
  return a;
}

/// Earliest window-start edge of a query anchored at `origin` with the
/// given slide that lies strictly after `t` (edges at origin + k*slide,
/// k >= 0).
inline TimestampMs NextStartEdgeAfter(TimestampMs origin, TimestampMs slide,
                                      TimestampMs t) {
  if (origin > t) return origin;
  const int64_t k = (t - origin) / slide + 1;
  return origin + k * slide;
}

/// Earliest point of the full lattice { s : s ≡ anchor (mod period) }
/// strictly after `t`. Unlike NextStartEdgeAfter the lattice is unbounded
/// below: factor lattices are only consulted for t at or past the first
/// registered query's origin, so earlier lattice points are never asked
/// for.
inline TimestampMs NextLatticeEdgeAfter(TimestampMs anchor,
                                        TimestampMs period, TimestampMs t) {
  return t + period - FloorMod(t - anchor, period);
}

/// Earliest point of the lattice { s : s ≡ anchor (mod period) } at or
/// after `t`. Used by the de-sharing hand-back (DESIGN.md §14): a whale
/// re-admitted to the shared plan must land on its original window
/// lattice so the dedicated pipeline's last window and the shared plan's
/// first one tile exactly.
inline TimestampMs AlignForward(TimestampMs t, TimestampMs anchor,
                                TimestampMs period) {
  const TimestampMs r = FloorMod(t - anchor, period);
  return r == 0 ? t : t + period - r;
}

/// The cached-slice resolution pattern of the operators' hot paths:
/// consecutive tuples overwhelmingly share a slice (sources are roughly
/// time-ordered), so the slice lookup is hoisted out of the per-tuple loop
/// and revalidated by [start, end) containment. Safe within a batch:
/// slices only change on markers, which are batch boundaries.
///
/// Advance returns true when the cached slice changed (including the first
/// call), signalling the caller to re-resolve any per-slice pointer it
/// pairs with the cursor.
class SliceCursor {
 public:
  template <typename Tracker>
  bool Advance(Tracker& tracker, TimestampMs t) {
    if (valid_ && t >= slice_.start && t < slice_.end) return false;
    slice_ = tracker.SliceFor(t);
    valid_ = true;
    return true;
  }

  const SliceInfo& slice() const { return slice_; }
  bool valid() const { return valid_; }
  void Invalidate() { valid_ = false; }

 private:
  SliceInfo slice_;
  bool valid_ = false;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_WINDOW_MATH_H_
