#ifndef ASTREAM_CORE_CHANGELOG_H_
#define ASTREAM_CORE_CHANGELOG_H_

#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/query.h"
#include "spe/element.h"

namespace astream::core {

/// A query placed into a slot at some event time.
struct QueryActivation {
  QueryId id = -1;
  int slot = -1;
  TimestampMs created_at = 0;
  QueryDescriptor desc;
};

/// A query removed from its slot.
struct QueryDeactivation {
  QueryId id = -1;
  int slot = -1;
};

/// The changelog (Sec. 2.1.2): one batch of query creations and deletions,
/// woven into the data streams as a control marker. Carries the
/// changelog-set: bit i is SET iff slot i is unchanged by this batch, and
/// UNSET iff the slot's query was deleted and/or a new query was placed
/// there. `num_slots` is the slot-universe size after applying the batch.
struct Changelog : public spe::MarkerPayload {
  int64_t epoch = 0;
  TimestampMs time = 0;
  std::vector<QueryActivation> created;
  std::vector<QueryDeactivation> deleted;
  QuerySet changelog_set;
  size_t num_slots = 0;

  /// Builds the changelog-set from created/deleted and `num_slots`.
  void ComputeChangelogSet();

  std::string ToString() const;

  void Serialize(spe::StateWriter* writer) const;
  static Changelog Deserialize(spe::StateReader* reader);

  /// Wraps this changelog (already heap-allocated) into a control marker.
  static spe::ControlMarker MakeMarker(std::shared_ptr<const Changelog> log);

  /// Extracts the payload from a changelog marker (nullptr otherwise).
  static const Changelog* FromMarker(const spe::ControlMarker& marker);
};

/// One live query as tracked inside every shared operator.
struct ActiveQuery {
  QueryId id = -1;
  int slot = -1;
  TimestampMs created_at = 0;
  QueryDescriptor desc;
};

/// The slot-indexed table of active queries that each shared operator
/// maintains (Sec. 3.1: "Each operator in AStream keeps a list of active
/// queries. Once active queries are updated via changelog, operators change
/// their computation logic accordingly."). Deterministic: the table is a
/// pure function of the changelog sequence, so replays reproduce it.
class ActiveQueryTable {
 public:
  /// Applies one changelog batch (deletions first, then creations).
  /// Returns InvalidArgument on slot/id mismatches.
  Status Apply(const Changelog& log);

  /// The query in `slot`, or nullptr if the slot is free.
  const ActiveQuery* QueryAt(int slot) const;

  /// The active query with this id, or nullptr.
  const ActiveQuery* FindById(QueryId id) const;

  size_t num_slots() const { return slots_.size(); }
  size_t num_active() const { return num_active_; }
  int64_t last_epoch() const { return last_epoch_; }

  /// Calls fn(const ActiveQuery&) for every active query in slot order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& q : slots_) {
      if (q.has_value()) fn(*q);
    }
  }

  /// Query-set with the bits of all active queries satisfying `pred`.
  template <typename Pred>
  QuerySet SlotsWhere(Pred&& pred) const {
    QuerySet set(slots_.size());
    for (const auto& q : slots_) {
      if (q.has_value() && pred(*q)) set.Set(q->slot);
    }
    return set;
  }

  void Serialize(spe::StateWriter* writer) const;
  Status Restore(spe::StateReader* reader);

 private:
  std::vector<std::optional<ActiveQuery>> slots_;
  size_t num_active_ = 0;
  int64_t last_epoch_ = -1;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_CHANGELOG_H_
