#include "core/shared_aggregation.h"

#include <algorithm>
#include <limits>

namespace astream::core {

SharedAggregation::SharedAggregation(AggConfig config)
    : SharedWindowedOperator(config.shared), config_(std::move(config)) {
  if (!config_.port_filter) {
    config_.port_filter = [](const ActiveQuery& q, int port) {
      (void)q;
      (void)port;
      return true;
    };
  }
  port_masks_.resize(config_.num_ports);
  arrange_.BindSpill(spill_space());
  arrange_.BindCompactor(compactor());
  arrange_.SetAccessAware(access_aware_eviction());
  if (governor() != nullptr) governor()->Register(this);
}

SharedAggregation::~SharedAggregation() {
  if (governor() != nullptr) governor()->Unregister(this);
}

size_t SharedAggregation::SpillOnce() {
  // Composed-block memo goes first: it is derived state, rebuilt on demand
  // from the stores, so shedding it loses no information.
  const size_t memo_released = arrange_.ReleaseMemo();
  if (memo_released > 0) {
    RefreshArenaBytes();
    return memo_released;
  }
  int64_t victim_reads = 0;
  const int64_t victim = arrange_.PickVictim(&victim_reads);
  if (victim == AggArrangement::kNoVersion) return 0;
  if (victim != arrange_.ColdestResident()) {
    ++reload_saves_;  // a hot slice kept resident
  }
  size_t released = arrange_.SpillAt(victim);
  released += tracker().cl_table().SpillBelow(victim, spill_space());
  RefreshArenaBytes();
  return released;
}

void SharedAggregation::OnActiveSetChanged() {
  slot_info_.assign(table().num_slots(), SlotInfo{});
  table().ForEach([&](const ActiveQuery& q) {
    if (!hosted_mask().Test(q.slot)) return;
    SlotInfo& info = slot_info_[q.slot];
    info.valid = true;
    info.session = !q.desc.window.IsTimeWindow();
    info.agg_column = q.desc.agg.column;
    info.agg_kind = q.desc.agg.kind;
  });
  for (int p = 0; p < config_.num_ports; ++p) {
    port_masks_[p] = table().SlotsWhere([&](const ActiveQuery& q) {
      return hosted_mask().Test(q.slot) && config_.port_filter(q, p);
    });
  }
  // Partition hosted time-window slots by agg column: with sharing on, a
  // tuple does one accumulator Add per distinct column; different kinds
  // over the same column share the group (Finalize picks per query).
  column_masks_.clear();
  time_mask_ = QuerySet();
  session_mask_ = QuerySet();
  for (size_t slot = 0; slot < slot_info_.size(); ++slot) {
    const SlotInfo& info = slot_info_[slot];
    if (!info.valid) continue;
    if (info.session) {
      session_mask_.Set(slot);
      continue;
    }
    time_mask_.Set(slot);
    auto it = std::find_if(
        column_masks_.begin(), column_masks_.end(),
        [&](const ColumnMask& cm) { return cm.column == info.agg_column; });
    if (it == column_masks_.end()) {
      column_masks_.push_back(ColumnMask{info.agg_column, QuerySet()});
      it = std::prev(column_masks_.end());
    }
    it->slots.Set(slot);
  }
}

void SharedAggregation::OnQueryCreated(const ActiveQuery& query) {
  if (query.desc.window.IsTimeWindow()) return;
  SessionQuery sq;
  sq.id = query.id;
  sq.slot = query.slot;
  sq.gap = query.desc.window.gap;
  sq.agg_kind = query.desc.agg.kind;
  sq.agg_column = query.desc.agg.column;
  session_queries_[query.id] = std::move(sq);
}

void SharedAggregation::OnQueryDeleted(const DrainingQuery& draining) {
  auto it = session_queries_.find(draining.query.id);
  if (it == session_queries_.end()) return;
  SessionQuery& sq = it->second;
  sq.deleted_at = draining.deleted_at;
  // Cancel sessions that cannot close by the deletion time.
  for (auto kit = sq.sessions.begin(); kit != sq.sessions.end();) {
    auto& sessions = kit->second;
    sessions.erase(
        std::remove_if(sessions.begin(), sessions.end(),
                       [&](const SessionState& s) {
                         return s.last + sq.gap > sq.deleted_at;
                       }),
        sessions.end());
    kit = sessions.empty() ? sq.sessions.erase(kit) : std::next(kit);
  }
  if (sq.sessions.empty()) session_queries_.erase(it);
}

void SharedAggregation::AddToSession(SessionQuery* sq, spe::Value key,
                                     TimestampMs t, spe::Value value) {
  auto& sessions = sq->sessions[key];
  SessionState merged;
  merged.start = t;
  merged.last = t;
  merged.acc.Add(value);
  std::vector<SessionState> kept;
  kept.reserve(sessions.size());
  for (SessionState& s : sessions) {
    const bool overlaps = t + sq->gap > s.start && s.last + sq->gap > t;
    if (overlaps) {
      merged.start = std::min(merged.start, s.start);
      merged.last = std::max(merged.last, s.last);
      merged.acc.Merge(s.acc);
    } else {
      kept.push_back(std::move(s));
    }
  }
  kept.push_back(std::move(merged));
  std::sort(kept.begin(), kept.end(),
            [](const SessionState& a, const SessionState& b) {
              return a.start < b.start;
            });
  sessions = std::move(kept);
}

void SharedAggregation::IngestRecord(const spe::Record& record,
                                     const QuerySet& tags, SliceCursor* cursor,
                                     AggStore** cached_store) {
  if (meter_costs()) {
    tags.ForEachSetBit([&](size_t slot) {
      if (obs::QuerySeries* s = SeriesForSlot(slot)) s->cost_rows.Add();
    });
  }
  // Session slots route to per-(query, key) session state.
  if (session_mask_.Any()) {
    (tags & session_mask_).ForEachSetBit([&](size_t slot) {
      const SlotInfo& info = slot_info_[slot];
      const ActiveQuery* q = table().QueryAt(static_cast<int>(slot));
      if (q == nullptr) return;
      auto it = session_queries_.find(q->id);
      if (it != session_queries_.end()) {
        AddToSession(&it->second, record.row.key(), record.event_time,
                     record.row.At(info.agg_column));
      }
    });
  }
  if (share_arrangements()) {
    // Group-shared path: one accumulator Add per distinct agg column,
    // tagged with every interested slot — per-tuple maintenance cost is
    // O(distinct columns), independent of how many queries (and window
    // specs) share the stream.
    for (const ColumnMask& cm : column_masks_) {
      QuerySet group_tags = tags & cm.slots;
      ++bitset_ops_;
      if (group_tags.None()) continue;
      if (cursor->Advance(tracker(), record.event_time) ||
          *cached_store == nullptr) {
        *cached_store = &arrange_.StoreAt(cursor->slice().index);
      }
      (*cached_store)
          ->Add(record.row.key(), std::move(group_tags),
                record.row.At(cm.column));
    }
  } else {
    // Reference path: per-slot singleton groups reproduce the old
    // per-query-store maintenance cost (one Add per interested slot).
    (tags & time_mask_).ForEachSetBit([&](size_t slot) {
      const SlotInfo& info = slot_info_[slot];
      if (cursor->Advance(tracker(), record.event_time) ||
          *cached_store == nullptr) {
        *cached_store = &arrange_.StoreAt(cursor->slice().index);
      }
      (*cached_store)
          ->Add(record.row.key(), QuerySet::Single(slot),
                record.row.At(info.agg_column));
    });
  }
}

void SharedAggregation::ProcessRecord(int port, spe::Record record,
                                      spe::Collector* out) {
  (void)out;
  NoteEventTime(record.event_time);
  if (record.event_time < current_watermark()) {
    ++records_late_;
    if (metrics_on()) {
      (record.tags & port_masks_[port]).ForEachSetBit([&](size_t slot) {
        if (obs::QuerySeries* s = SeriesForSlot(slot)) s->late_drops.Add();
      });
    }
    return;
  }
  QuerySet tags = record.tags & port_masks_[port];
  ++bitset_ops_;
  if (tags.None()) return;

  SliceCursor cursor;
  AggStore* store = nullptr;
  IngestRecord(record, tags, &cursor, &store);
  RefreshArenaBytes();
  EnforceBudget();
}

void SharedAggregation::RefreshArenaBytes() {
  int64_t bytes = 0;
  size_t resident = 0;
  int64_t coldest_index = AggArrangement::kNoVersion;
  arrange_.AddBytes(&bytes, &resident, &coldest_index);
  state_arena_bytes_ = bytes;
  if (governor() == nullptr) return;
  int64_t coldest_end = std::numeric_limits<int64_t>::max();
  if (coldest_index != AggArrangement::kNoVersion) {
    auto slice = tracker().SliceByIndex(coldest_index);
    coldest_end = slice.has_value() ? slice->end : coldest_index;
  }
  // Read heat of the slice SpillOnce would pick (see SharedJoin): lets
  // the governor spare this operator when a peer holds a colder slice.
  int64_t victim_reads = 0;
  if (access_aware_eviction() && coldest_index != AggArrangement::kNoVersion) {
    arrange_.PickVictim(&victim_reads);
  }
  governor()->Update(this, resident, coldest_end, victim_reads);
}

void SharedAggregation::EnforceBudget() {
  if (governor() != nullptr) governor()->Enforce(this);
}

void SharedAggregation::ProcessBatch(int port, spe::RecordBatch& records,
                                     spe::Collector* out) {
  (void)out;
  const QuerySet& mask = port_masks_[port];
  // The slice/store cursor persists across the batch: consecutive tuples
  // overwhelmingly share a slice (sources are roughly time-ordered), so
  // the lookup runs once per run of same-slice tuples (see SliceCursor).
  SliceCursor cursor;
  AggStore* cached_store = nullptr;
  int64_t ops = 0;
  for (spe::Record& record : records) {
    NoteEventTime(record.event_time);
    if (record.event_time < current_watermark()) {
      ++records_late_;
      if (metrics_on()) {
        (record.tags & mask).ForEachSetBit([&](size_t slot) {
          if (obs::QuerySeries* s = SeriesForSlot(slot)) {
            s->late_drops.Add();
          }
        });
      }
      continue;
    }
    scratch_tags_ = record.tags;
    scratch_tags_ &= mask;
    ++ops;
    if (scratch_tags_.None()) continue;
    IngestRecord(record, scratch_tags_, &cursor, &cached_store);
  }
  bitset_ops_ += ops;
  RefreshArenaBytes();
  EnforceBudget();
}

void SharedAggregation::TriggerWindows(
    TimestampMs start, TimestampMs end,
    const std::vector<TriggeredQuery>& queries, spe::Collector* out) {
  const std::vector<SliceInfo> slices = tracker().SlicesIn(start, end);
  if (slices.empty()) return;
  for (const SliceInfo& s : slices) arrange_.NoteRead(s.index);
  const int64_t last_index = slices.back().index;
  const TimestampMs result_time = end - 1;

  // Compose the span once for every query in this trigger; with sharing
  // on, aligned sub-blocks land in the arrangement memo and are reused by
  // overlapping windows of this and other queries.
  const AggArrangement::Composed composed =
      arrange_.Compose(slices, &tracker().cl_table(), share_arrangements());

  for (const TriggeredQuery& tq : queries) {
    const ActiveQuery& q = *tq.query;
    if (!q.desc.window.IsTimeWindow()) continue;
    obs::QuerySeries* series = metrics_on() ? SeriesForQuery(q.id) : nullptr;
    // Per-slice accounting kept from the per-query-store path: slice
    // partials are computed once at insert time and shared by every
    // window covering the slice — each covered, still-valid slice is a
    // reuse.
    for (const SliceInfo& s : slices) {
      if (arrange_.AtVersion(s.index) == nullptr) continue;
      ++bitset_ops_;
      if (!tracker().cl_table().SlotUnchanged(last_index, s.index, q.slot)) {
        continue;
      }
      if (series != nullptr) series->slices_reused.Add();
    }
    // The composed view's group tags are already masked to the last slice
    // via the CL table, so slot membership alone decides contribution.
    for (const auto& [key, groups] : composed) {
      spe::Accumulator acc;
      bool any = false;
      for (const AggArrangement::Group& g : groups) {
        if (g.tags.Test(q.slot)) {
          acc.Merge(g.acc);
          any = true;
        }
      }
      if (!any) continue;
      spe::StreamElement el;
      el.kind = spe::ElementKind::kRecord;
      el.record.event_time = result_time;
      el.record.row = spe::Row{key, acc.Finalize(q.desc.agg.kind)};
      el.record.tags = QuerySet::Single(q.slot);
      el.record.channel = q.id;
      out->Emit(std::move(el));
    }
  }
}

void SharedAggregation::OnWatermarkTail(TimestampMs watermark,
                                        spe::Collector* out) {
  // Close expired sessions (and fully drain deleted session queries).
  for (auto it = session_queries_.begin(); it != session_queries_.end();) {
    SessionQuery& sq = it->second;
    for (auto kit = sq.sessions.begin(); kit != sq.sessions.end();) {
      auto& sessions = kit->second;
      auto sit = sessions.begin();
      while (sit != sessions.end() && sit->last + sq.gap <= watermark) {
        spe::StreamElement el;
        el.kind = spe::ElementKind::kRecord;
        el.record.event_time = sit->last + sq.gap - 1;
        el.record.row =
            spe::Row{kit->first, sit->acc.Finalize(sq.agg_kind)};
        el.record.tags = QuerySet::Single(sq.slot);
        el.record.channel = sq.id;
        out->Emit(std::move(el));
        sit = sessions.erase(sit);
      }
      kit = sessions.empty() ? sq.sessions.erase(kit) : std::next(kit);
    }
    const bool deleted = sq.deleted_at != kMaxTimestamp;
    if (deleted && sq.sessions.empty()) {
      it = session_queries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SharedAggregation::OnSlicesEvicted(const std::vector<int64_t>& indices) {
  if (indices.empty()) return;
  arrange_.EvictThrough(indices.back());
  RefreshArenaBytes();
}

Status SharedAggregation::SnapshotState(spe::StateWriter* writer) {
  SerializeBase(writer);
  arrange_.Serialize(writer);
  writer->WriteU64(session_queries_.size());
  for (const auto& [id, sq] : session_queries_) {
    writer->WriteI64(sq.id);
    writer->WriteI64(sq.slot);
    writer->WriteI64(sq.gap);
    writer->WriteI64(static_cast<int64_t>(sq.agg_kind));
    writer->WriteI64(sq.agg_column);
    writer->WriteI64(sq.deleted_at);
    writer->WriteU64(sq.sessions.size());
    for (const auto& [key, sessions] : sq.sessions) {
      writer->WriteI64(key);
      writer->WriteU64(sessions.size());
      for (const SessionState& s : sessions) {
        writer->WriteI64(s.start);
        writer->WriteI64(s.last);
        writer->WriteI64(s.acc.sum);
        writer->WriteI64(s.acc.count);
        writer->WriteI64(s.acc.min);
        writer->WriteI64(s.acc.max);
      }
    }
  }
  return Status::OK();
}

Status SharedAggregation::RestoreState(spe::StateReader* reader) {
  ASTREAM_RETURN_IF_ERROR(RestoreBase(reader));
  ASTREAM_RETURN_IF_ERROR(arrange_.Restore(reader));
  session_queries_.clear();
  const uint64_t num_sq = reader->ReadU64();
  for (uint64_t i = 0; i < num_sq && reader->Ok(); ++i) {
    SessionQuery sq;
    sq.id = reader->ReadI64();
    sq.slot = static_cast<int>(reader->ReadI64());
    sq.gap = reader->ReadI64();
    sq.agg_kind = static_cast<spe::AggKind>(reader->ReadI64());
    sq.agg_column = static_cast<int>(reader->ReadI64());
    sq.deleted_at = reader->ReadI64();
    const uint64_t num_keys = reader->ReadU64();
    for (uint64_t k = 0; k < num_keys && reader->Ok(); ++k) {
      const spe::Value key = reader->ReadI64();
      auto& sessions = sq.sessions[key];
      const uint64_t n = reader->ReadU64();
      for (uint64_t s = 0; s < n && reader->Ok(); ++s) {
        SessionState st;
        st.start = reader->ReadI64();
        st.last = reader->ReadI64();
        st.acc.sum = reader->ReadI64();
        st.acc.count = reader->ReadI64();
        st.acc.min = reader->ReadI64();
        st.acc.max = reader->ReadI64();
        sessions.push_back(st);
      }
    }
    session_queries_[sq.id] = std::move(sq);
  }
  // Rebuild derived caches.
  OnActiveSetChanged();
  if (!reader->Ok()) return Status::Internal("bad shared-aggregation snapshot");
  // Restored state is fully resident; shed back down to budget before
  // replay resumes.
  RefreshArenaBytes();
  EnforceBudget();
  return Status::OK();
}

}  // namespace astream::core
