#include "core/query_builder.h"

#include <utility>

namespace astream::core {

QueryBuilder::QueryBuilder(QueryKind kind) { desc_.kind = kind; }

void QueryBuilder::Fail(std::string error) {
  if (status_.ok()) status_ = Status::InvalidArgument(std::move(error));
}

QueryBuilder& QueryBuilder::WhereA(int column, CmpOp op, spe::Value constant) {
  if (!status_.ok()) return *this;
  if (desc_.kind == QueryKind::kMultiJoin) {
    Fail("WhereA: multiway join queries filter per input leg "
         "(use WhereStream)");
    return *this;
  }
  if (column < 0) {
    Fail("WhereA: column must be >= 0, got " + std::to_string(column));
    return *this;
  }
  desc_.select_a.push_back(Predicate{column, op, constant});
  return *this;
}

QueryBuilder& QueryBuilder::WhereB(int column, CmpOp op, spe::Value constant) {
  if (!status_.ok()) return *this;
  if (!desc_.HasJoin()) {
    Fail(std::string("WhereB: only join/complex queries read stream B (") +
         QueryKindName(desc_.kind) + " query)");
    return *this;
  }
  if (column < 0) {
    Fail("WhereB: column must be >= 0, got " + std::to_string(column));
    return *this;
  }
  desc_.select_b.push_back(Predicate{column, op, constant});
  return *this;
}

QueryBuilder& QueryBuilder::Input(int stream) {
  return InputKeyed(stream, {0});
}

QueryBuilder& QueryBuilder::InputKeyed(int stream, std::vector<int> key) {
  if (!status_.ok()) return *this;
  if (desc_.kind != QueryKind::kMultiJoin) {
    Fail(std::string("Input: only multiway join queries declare input "
                     "legs (") +
         QueryKindName(desc_.kind) + " query)");
    return *this;
  }
  if (stream < 0 || stream >= kMaxJoinDepth) {
    Fail("Input: stream must be in [0, " + std::to_string(kMaxJoinDepth) +
         "), got " + std::to_string(stream));
    return *this;
  }
  if (desc_.UsesStream(stream)) {
    Fail("Input: duplicate input leg for stream " + std::to_string(stream) +
         " (self-joins over one stream are not supported)");
    return *this;
  }
  if (static_cast<int>(desc_.join_inputs.size()) >= kMaxJoinDepth) {
    Fail("Input: at most " + std::to_string(kMaxJoinDepth) +
         " input legs, got a " + std::to_string(kMaxJoinDepth + 1) + "th");
    return *this;
  }
  if (key.empty()) {
    Fail("Input: join key for stream " + std::to_string(stream) +
         " must have at least one column");
    return *this;
  }
  for (int column : key) {
    if (column < 0) {
      Fail("Input: join-key column must be >= 0, got " +
           std::to_string(column));
      return *this;
    }
  }
  if (!desc_.join_inputs.empty() &&
      key.size() != desc_.join_inputs.front().key.size()) {
    Fail("Input: mismatched join-key arity for stream " +
         std::to_string(stream) + ": got " + std::to_string(key.size()) +
         " column(s), earlier legs declared " +
         std::to_string(desc_.join_inputs.front().key.size()));
    return *this;
  }
  JoinInput in;
  in.stream = stream;
  in.key = std::move(key);
  desc_.join_inputs.push_back(std::move(in));
  return *this;
}

QueryBuilder& QueryBuilder::WhereStream(int stream, int column, CmpOp op,
                                        spe::Value constant) {
  if (!status_.ok()) return *this;
  if (desc_.kind != QueryKind::kMultiJoin) {
    Fail(std::string("WhereStream: only multiway join queries filter per "
                     "input leg (") +
         QueryKindName(desc_.kind) + " query)");
    return *this;
  }
  if (column < 0) {
    Fail("WhereStream: column must be >= 0, got " + std::to_string(column));
    return *this;
  }
  for (JoinInput& in : desc_.join_inputs) {
    if (in.stream == stream) {
      in.select.push_back(Predicate{column, op, constant});
      return *this;
    }
  }
  Fail("WhereStream: no input leg declared for stream " +
       std::to_string(stream) + " (call Input first)");
  return *this;
}

QueryBuilder& QueryBuilder::Window(const spe::WindowSpec& spec) {
  if (!status_.ok()) return *this;
  if (desc_.kind == QueryKind::kSelection) {
    Fail("Window: selection queries are unwindowed");
    return *this;
  }
  if (has_window_) {
    Fail("Window: window already set");
    return *this;
  }
  if (spec.IsTimeWindow()) {
    if (spec.length <= 0) {
      Fail("Window: length must be > 0, got " + std::to_string(spec.length));
      return *this;
    }
    if (spec.slide <= 0 || spec.slide > spec.length) {
      Fail("Window: slide must be in (0, length], got slide=" +
           std::to_string(spec.slide) + " length=" +
           std::to_string(spec.length));
      return *this;
    }
  } else if (spec.gap <= 0) {
    Fail("Window: session gap must be > 0, got " + std::to_string(spec.gap));
    return *this;
  }
  desc_.window = spec;
  has_window_ = true;
  return *this;
}

QueryBuilder& QueryBuilder::TumblingWindow(TimestampMs length) {
  return Window(spe::WindowSpec::Tumbling(length));
}

QueryBuilder& QueryBuilder::SlidingWindow(TimestampMs length,
                                          TimestampMs slide) {
  return Window(spe::WindowSpec::Sliding(length, slide));
}

QueryBuilder& QueryBuilder::SessionWindow(TimestampMs gap) {
  return Window(spe::WindowSpec::Session(gap));
}

QueryBuilder& QueryBuilder::Agg(spe::AggKind kind, int column) {
  if (!status_.ok()) return *this;
  if (!desc_.HasAgg()) {
    Fail(std::string("Agg: only aggregation/complex queries aggregate (") +
         QueryKindName(desc_.kind) + " query)");
    return *this;
  }
  if (column < 0) {
    Fail("Agg: column must be >= 0, got " + std::to_string(column));
    return *this;
  }
  if (has_agg_) {
    Fail("Agg: aggregation already set");
    return *this;
  }
  desc_.agg = spe::AggSpec{kind, column};
  has_agg_ = true;
  return *this;
}

QueryBuilder& QueryBuilder::JoinDepth(int depth) {
  if (!status_.ok()) return *this;
  if (desc_.kind != QueryKind::kComplex) {
    Fail(std::string("JoinDepth: only complex queries chain joins (") +
         QueryKindName(desc_.kind) + " query)");
    return *this;
  }
  if (depth < 1 || depth > kMaxJoinDepth) {
    Fail("JoinDepth: depth must be in [1, " + std::to_string(kMaxJoinDepth) +
         "], got " + std::to_string(depth));
    return *this;
  }
  desc_.join_depth = depth;
  return *this;
}

Result<QueryDescriptor> QueryBuilder::Build() const {
  if (!status_.ok()) return status_;
  if (desc_.HasWindow() && !has_window_) {
    return Status::InvalidArgument(
        std::string("Build: ") + QueryKindName(desc_.kind) +
        " query needs a window (call TumblingWindow/SlidingWindow/"
        "SessionWindow)");
  }
  if (desc_.kind == QueryKind::kMultiJoin) {
    if (desc_.join_inputs.size() < 2) {
      return Status::InvalidArgument(
          "Build: multiway join needs at least 2 input legs, got " +
          std::to_string(desc_.join_inputs.size()));
    }
    if (desc_.window.IsTimeWindow() == false) {
      return Status::InvalidArgument(
          "Build: multiway join queries need a time window "
          "(tumbling/sliding)");
    }
    for (const JoinInput& in : desc_.join_inputs) {
      if (in.key != std::vector<int>{0}) {
        return Status::InvalidArgument(
            "Build: multiway join legs must key on the row key (column 0); "
            "stream " + std::to_string(in.stream) +
            " declared a different key");
      }
    }
  }
  return desc_;
}

}  // namespace astream::core
