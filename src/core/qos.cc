#include "core/qos.h"

#include <algorithm>

namespace astream::core {

void LatencyStats::Add(int64_t value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  if (count_ % stride_ == 0) {
    if (samples_.size() >= kMaxSamples) {
      // Thin the buffer: keep every other sample, double the stride.
      std::vector<int64_t> thinned;
      thinned.reserve(samples_.size() / 2);
      for (size_t i = 0; i < samples_.size(); i += 2) {
        thinned.push_back(samples_[i]);
      }
      samples_ = std::move(thinned);
      stride_ *= 2;
    }
    samples_.push_back(value);
  }
  ++count_;
}

int64_t LatencyStats::Percentile(double p) const {
  if (samples_.empty()) return 0;
  std::sort(samples_.begin(), samples_.end());
  const double rank = p / 100.0 * (samples_.size() - 1);
  const size_t idx = static_cast<size_t>(rank);
  return samples_[std::min(idx, samples_.size() - 1)];
}

void QosMonitor::RecordOutput(QueryId query, TimestampMs event_time,
                              TimestampMs now) {
  std::lock_guard<std::mutex> lock(mutex_);
  event_time_latency_.Add(now - event_time);
  ++total_outputs_;
  ++outputs_per_query_[query];
}

void QosMonitor::RecordDeployment(QueryId query, TimestampMs latency) {
  std::lock_guard<std::mutex> lock(mutex_);
  deployment_latency_.Add(latency);
  deployment_events_.emplace_back(query, latency);
}

QosMonitor::Snapshot QosMonitor::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.event_time_latency = event_time_latency_;
  s.deployment_latency = deployment_latency_;
  s.total_outputs = total_outputs_;
  s.outputs_per_query = outputs_per_query_;
  s.deployment_events = deployment_events_;
  return s;
}

int64_t QosMonitor::total_outputs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_outputs_;
}

int64_t QosMonitor::OutputsOf(QueryId query) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = outputs_per_query_.find(query);
  return it == outputs_per_query_.end() ? 0 : it->second;
}

}  // namespace astream::core
