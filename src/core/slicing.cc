#include "core/slicing.h"

#include <algorithm>
#include <cassert>

namespace astream::core {

void SliceTracker::AddQuery(int slot, TimestampMs origin,
                            spe::WindowSpec spec) {
  if (!spec.IsTimeWindow()) return;  // session windows contribute no edges
  // Factor rewriting: a composable spec registers (or joins) a shared
  // GCD-derived lattice whose edge set is a superset of every window edge
  // the query will ever need — the query then contributes no per-query
  // edge generator at all. The cost model's rejects fall back to exact
  // edges below.
  if (factor_rewrite_ && factors_.AcquireFor(slot, origin, spec)) return;
  queries_[slot] = TrackedQuery{origin, spec};
}

void SliceTracker::RemoveQuery(int slot) {
  factors_.Release(slot);
  queries_.erase(slot);
}

TimestampMs SliceTracker::NextEdgeAfter(TimestampMs t) const {
  TimestampMs next = kMaxTimestamp;
  for (const auto& [slot, q] : queries_) {
    // Next window-start edge strictly after t.
    next = std::min(next, NextStartEdgeAfter(q.origin, q.spec.slide, t));
    // Next window-end edge strictly after t.
    next = std::min(next, q.spec.FirstEndAfter(q.origin, t));
  }
  // Factor lattices: one edge generator per distinct factor, however many
  // queries ride it.
  factors_.ForEachLattice([&](TimestampMs anchor, TimestampMs period) {
    next = std::min(next, NextLatticeEdgeAfter(anchor, period, t));
  });
  return next;
}

void SliceTracker::AppendSlice(TimestampMs end, QuerySet delta) {
  assert(end > frontier_);
  SliceInfo s;
  s.start = frontier_;
  s.end = end;
  s.index = next_index_++;
  cl_table_.AddSlice(s.index, std::move(delta), num_slots_);
  slices_.push_back(s);
  frontier_ = end;
}

void SliceTracker::ExtendCovering(TimestampMs t) {
  assert(initialized_);
  while (frontier_ <= t) {
    TimestampMs next = NextEdgeAfter(frontier_);
    if (next == kMaxTimestamp) {
      // No windowed query contributes edges; one open-ended filler slice
      // just past t keeps the tiling invariant. It can never participate
      // in a trigger, so its extent is inconsequential.
      next = t + 1;
    }
    QuerySet delta = pending_delta_.has_value()
                         ? std::move(*pending_delta_)
                         : QuerySet::AllSet(num_slots_);
    pending_delta_.reset();
    AppendSlice(next, std::move(delta));
  }
}

SliceInfo SliceTracker::SliceFor(TimestampMs t) {
  assert(initialized_ && "SliceFor before the first changelog cut");
  if (t >= frontier_) ExtendCovering(t);
  assert(!slices_.empty() && t >= slices_.front().start &&
         "tuple older than the eviction horizon");
  // Binary search for the slice containing t.
  auto it = std::upper_bound(
      slices_.begin(), slices_.end(), t,
      [](TimestampMs v, const SliceInfo& s) { return v < s.end; });
  assert(it != slices_.end() && it->start <= t && t < it->end);
  return *it;
}

std::vector<SliceInfo> SliceTracker::SlicesIn(TimestampMs from,
                                              TimestampMs to) {
  std::vector<SliceInfo> out;
  if (!initialized_ || to <= from) return out;
  if (to - 1 >= frontier_) ExtendCovering(to - 1);
  for (const SliceInfo& s : slices_) {
    if (s.start >= to) break;
    if (s.start >= from && s.end <= to) out.push_back(s);
  }
  return out;
}

void SliceTracker::CutAt(TimestampMs time, const QuerySet& delta) {
  if (!initialized_) {
    initialized_ = true;
    frontier_ = time;
    pending_delta_ = delta;
    return;
  }
  assert(time >= last_cut_ && "changelog cuts must not go backwards");
  last_cut_ = time;
  if (time > frontier_) {
    // Materialize the gap using the pre-changelog query set.
    while (frontier_ < time) {
      const TimestampMs next =
          std::min(NextEdgeAfter(frontier_), time);
      QuerySet d = pending_delta_.has_value()
                       ? std::move(*pending_delta_)
                       : QuerySet::AllSet(num_slots_);
      pending_delta_.reset();
      AppendSlice(next, std::move(d));
    }
    pending_delta_ = delta;
    return;
  }
  if (time == frontier_) {
    // Boundary already exists; the next slice starts with this delta.
    // Merge with any pending delta (two batches at one instant).
    if (pending_delta_.has_value()) {
      *pending_delta_ &= delta;
    } else {
      pending_delta_ = delta;
    }
    return;
  }
  // time < frontier_: the cut lands inside the still-empty tail slice
  // (alignment guarantees no tuple at or beyond `time` was processed).
  assert(!slices_.empty() && slices_.back().start < time &&
         "changelog cut behind processed data");
  slices_.back().end = time;
  frontier_ = time;
  pending_delta_ = delta;
}

std::vector<int64_t> SliceTracker::EvictBefore(TimestampMs horizon) {
  std::vector<int64_t> evicted;
  while (!slices_.empty() && slices_.front().end <= horizon) {
    evicted.push_back(slices_.front().index);
    slices_.pop_front();
  }
  if (!evicted.empty()) {
    cl_table_.EvictBelow(evicted.back() + 1);
  }
  return evicted;
}

void SliceTracker::Serialize(spe::StateWriter* writer) const {
  writer->WriteU64(num_slots_);
  writer->WriteBool(initialized_);
  writer->WriteI64(frontier_);
  writer->WriteI64(last_cut_);
  writer->WriteI64(next_index_);
  writer->WriteU64(slices_.size());
  for (const SliceInfo& s : slices_) {
    writer->WriteI64(s.start);
    writer->WriteI64(s.end);
    writer->WriteI64(s.index);
  }
  writer->WriteU64(queries_.size());
  for (const auto& [slot, q] : queries_) {
    writer->WriteI64(slot);
    writer->WriteI64(q.origin);
    writer->WriteI64(static_cast<int64_t>(q.spec.type));
    writer->WriteI64(q.spec.length);
    writer->WriteI64(q.spec.slide);
    writer->WriteI64(q.spec.gap);
  }
  writer->WriteBool(pending_delta_.has_value());
  if (pending_delta_.has_value()) writer->WriteBitset(*pending_delta_);
  writer->WriteBool(factor_rewrite_);
  factors_.Serialize(writer);
  cl_table_.Serialize(writer);
}

Status SliceTracker::Restore(spe::StateReader* reader) {
  slices_.clear();
  queries_.clear();
  pending_delta_.reset();
  num_slots_ = reader->ReadU64();
  initialized_ = reader->ReadBool();
  frontier_ = reader->ReadI64();
  last_cut_ = reader->ReadI64();
  next_index_ = reader->ReadI64();
  const uint64_t num_slices = reader->ReadU64();
  for (uint64_t i = 0; i < num_slices && reader->Ok(); ++i) {
    SliceInfo s;
    s.start = reader->ReadI64();
    s.end = reader->ReadI64();
    s.index = reader->ReadI64();
    slices_.push_back(s);
  }
  const uint64_t num_queries = reader->ReadU64();
  for (uint64_t i = 0; i < num_queries && reader->Ok(); ++i) {
    const int slot = static_cast<int>(reader->ReadI64());
    TrackedQuery q;
    q.origin = reader->ReadI64();
    q.spec.type = static_cast<spe::WindowType>(reader->ReadI64());
    q.spec.length = reader->ReadI64();
    q.spec.slide = reader->ReadI64();
    q.spec.gap = reader->ReadI64();
    queries_[slot] = q;
  }
  if (reader->ReadBool()) pending_delta_ = reader->ReadBitset();
  factor_rewrite_ = reader->ReadBool();
  ASTREAM_RETURN_IF_ERROR(factors_.Restore(reader));
  ASTREAM_RETURN_IF_ERROR(cl_table_.Restore(reader));
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad SliceTracker snapshot");
}

}  // namespace astream::core
