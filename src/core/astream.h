#ifndef ASTREAM_CORE_ASTREAM_H_
#define ASTREAM_CORE_ASTREAM_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/admission.h"
#include "core/multiway_join.h"
#include "core/push_result.h"
#include "core/qos.h"
#include "core/query.h"
#include "core/router.h"
#include "core/shared_aggregation.h"
#include "core/shared_join.h"
#include "core/shared_selection.h"
#include "core/shared_session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spe/runner.h"

namespace astream::core {

/// The public entry point of the AStream library: one *shared* streaming
/// job that hosts an arbitrary, changing set of ad-hoc queries (Fig. 2).
///
/// Lifecycle:
///   1. Create(options) — pick a topology family and parallelism.
///   2. Start().
///   3. From ONE control thread: Push*/PushWatermark data in event-time
///      order, Submit/Cancel queries, and Pump() to flush session batches
///      (markers are woven into the streams).
///   4. Results arrive on the result callback (sink threads in threaded
///      mode, inline in sync mode), tagged with their query id.
///   5. FinishAndWait() or Stop().
class AStreamJob {
 public:
  /// The shared-topology families (Sec. 4: aggregation queries, join
  /// queries, complex pipelines of cascaded joins + aggregation) plus the
  /// flat n-ary multi-way join family over 2..5 streams (DESIGN.md §15).
  enum class TopologyKind { kAggregation, kJoin, kComplex, kMultiway };

  struct Options {
    TopologyKind topology = TopologyKind::kAggregation;
    /// External input streams (kMultiway only; 2..kMaxJoinDepth). Other
    /// topologies keep their fixed stream count (A, or A + B).
    int num_streams = 2;
    /// Instances per shared operator — the "cluster node" equivalent.
    int parallelism = 1;
    /// Threaded runner (benchmarks) vs. deterministic sync runner (tests).
    bool threaded = false;
    SharedSession::Config session;
    StoreMode initial_mode = StoreMode::kGrouped;
    bool adaptive_mode = true;
    /// Enable Fig. 18 overhead instrumentation.
    bool measure_overhead = false;
    /// Share predicate evaluation across queries via the selection's
    /// predicate index (see SharedSelection::Config).
    bool use_predicate_index = true;
    size_t channel_capacity = 1024;
    /// Threaded mode: route each internal (upstream-instance -> downstream-
    /// instance) edge through a lock-free SPSC ring instead of the mutex
    /// channel (external ingress always uses the mutex MPMC fallback).
    bool use_spsc_rings = true;
    /// Data-plane batch size. Pushed tuples are buffered per input stream
    /// and shipped as one ElementBatch (one channel lock, one operator
    /// dispatch) once `batch_size` tuples accumulated; operators batch
    /// their outputs to the same size. 1 = element-at-a-time (status quo).
    size_t batch_size = 1;
    /// Flush/linger policy for partially filled source batches: a buffer
    /// is flushed once the incoming event time has advanced this far past
    /// the buffer's first tuple, so latency-sensitive low-rate streams
    /// still drain promptly. Watermarks, changelog flushes, and checkpoint
    /// barriers always flush first (markers are batch boundaries).
    TimestampMs batch_linger_ms = 50;
    /// Join-stage count available for complex queries (1..kMaxJoinDepth).
    int max_join_stages = kMaxJoinDepth;
    Clock* clock = nullptr;  // defaults to WallClock
    /// Per-query metrics registry (counters, gauges, latency histograms).
    /// Disabled, instrumentation costs one predicted branch per record.
    bool enable_metrics = true;
    /// Structured lifecycle trace (submit → changelog flush → deploy ack →
    /// first result → cancel), exportable as JSON-lines.
    bool enable_trace = true;
    /// External checkpoint store surviving the job (crash recovery: the
    /// supervisor restores a *fresh* job from the old job's checkpoints).
    /// nullptr = the job owns a private store.
    spe::CheckpointStore* checkpoint_store = nullptr;
    /// First id TriggerCheckpoint() auto-assigns. A recovered job resumes
    /// numbering after the restored checkpoint so ids stay monotonic in
    /// the shared store.
    int64_t first_checkpoint_id = 1;
    /// Completed checkpoints kept in the store (older ones are pruned once
    /// a newer one completes); in-flight checkpoints are always kept.
    size_t checkpoint_retention = 2;
    /// Out-of-core state (DESIGN.md §10): when the resolved memory budget
    /// is > 0 the job creates a spill space + governor and the shared
    /// operators shed their coldest slices to disk under pressure (or, with
    /// allow_spill = false, PushA/PushB report kBackpressure instead).
    /// Default: ASTREAM_MEMORY_BUDGET from the environment, else unlimited
    /// (no storage engine, the pre-out-of-core behavior).
    storage::StorageOptions storage;
    /// Cross-window state sharing (DESIGN.md §12): shared arrangements with
    /// composition memos in the windowed operators plus factor-window
    /// rewriting in the slicer. Transparent to the Client API — outputs are
    /// byte-identical either way; off = the per-query-store reference mode.
    bool share_arrangements = true;
    /// Per-query isolation (DESIGN.md §14): SLO targets + admission
    /// control + de-sharing policy. Everything off by default.
    SloOptions slo;
    /// Per-query cost metering: attribute rows, trigger CPU time, and
    /// state bytes to the owning queries (`query.<id>.cost_*`). Implied
    /// by slo.enable_admission; requires enable_metrics.
    bool meter_costs = false;
  };

  using ResultCallback =
      std::function<void(QueryId, const spe::Record& record)>;

  static Result<std::unique_ptr<AStreamJob>> Create(Options options);
  ~AStreamJob();

  AStreamJob(const AStreamJob&) = delete;
  AStreamJob& operator=(const AStreamJob&) = delete;

  Status Start();

  /// Data input (event-time order per stream). Stream B exists only for
  /// join/complex/multiway topologies; streams 2.. only on kMultiway jobs
  /// with that many streams. Returns kBackpressure when the tuple was
  /// refused (job not started / finished / cancelled; no such stream) and
  /// kLateClamped when the event time was nudged onto the latest changelog
  /// marker (see PushResult).
  PushResult Push(int stream, TimestampMs event_time, spe::Row row);
  PushResult PushA(TimestampMs event_time, spe::Row row);
  PushResult PushB(TimestampMs event_time, spe::Row row);
  /// Advances the watermark on all input streams.
  void PushWatermark(TimestampMs watermark);

  /// Number of external input streams of this job's topology.
  int NumInputStreams() const { return static_cast<int>(inputs_.size()); }

  /// Submits an ad-hoc query (must match the topology family). The query
  /// goes live when its changelog batch deploys. Fails with
  /// FailedPrecondition before Start() or after FinishAndWait()/Stop().
  ///
  /// Under admission control (Options::slo) a submit may instead be
  /// *queued* (id assigned now, deploys when headroom returns — Pump()
  /// drains the queue) or *rejected* (kAdmissionRejected). Plain Submit
  /// returns the id for admitted AND queued queries; use
  /// SubmitWithOutcome to distinguish them.
  Result<QueryId> Submit(const QueryDescriptor& desc);
  /// Cancels an active or admission-queued query.
  Status Cancel(QueryId id);

  struct SubmitOutcome {
    QueryId id = -1;  // -1 iff rejected
    AdmissionDecision decision = AdmissionDecision::kAdmitted;
    double predicted_cost = 0;
    std::string reason;  // set for queued / rejected
  };
  /// Admission-aware submit: never fails on policy grounds, reports the
  /// decision instead. Validation errors still return a non-OK status.
  Result<SubmitOutcome> SubmitWithOutcome(const QueryDescriptor& desc);

  /// The admission controller (policy + cost model; see core/admission.h).
  AdmissionController& admission() { return admission_; }
  /// Queries waiting in the admission queue (control thread).
  size_t NumQueuedQueries() const { return admission_queue_.size(); }

  /// Cost metering (requires Options::meter_costs): per-query cost units
  /// accumulated since the previous call — rows ingested, microseconds of
  /// trigger CPU, and KiB of resident state. A recent-rate proxy shared by
  /// whale detection and the admission model's live refinement (each call
  /// feeds the observed shares back into the controller).
  std::map<QueryId, int64_t> MeteredCosts();

  /// Flushes due session batches into the streams; returns the number of
  /// changelogs injected. Call regularly from the control thread.
  int Pump(bool force = false);

  /// Blocks until every flushed changelog has been applied by all router
  /// instances (the driver's ACK, Fig. 5). Sync mode: immediate.
  bool WaitForDeployment(TimestampMs timeout_ms = 10'000);

  /// Injects a checkpoint barrier; returns its id. State lands in
  /// checkpoints() once every instance snapshotted. The shared session's
  /// control-plane state (slot allocator, id/epoch counters) is captured
  /// too, so query ids stay consistent after recovery.
  ///
  /// `source_offsets` (source-log positions as of the barrier) are stored
  /// with the checkpoint for replay. `id` forces the checkpoint id (used
  /// when a recovery replay re-triggers logged checkpoints); 0 auto-assigns
  /// the next one. An explicit id advances the auto counter past it.
  int64_t TriggerCheckpoint(std::map<int, int64_t> source_offsets = {},
                            int64_t id = 0);
  /// Restores all operator AND session state from a completed checkpoint
  /// (call after Start, before any data).
  Status RestoreFrom(const spe::CheckpointStore::Checkpoint& checkpoint);

  /// Pseudo-stage index under which the session snapshot is stored.
  static constexpr int kSessionStateStage = -1;
  spe::CheckpointStore& checkpoints() { return *store_; }

  /// End-of-stream: flush pending batches, drain, join all tasks. Returns
  /// the first task failure if the run was poisoned (see Health()).
  Status FinishAndWait();
  /// Hard cancel. Also returns the first task failure, if any.
  Status Stop();

  /// First task failure captured by the runner (OK while healthy). A
  /// failed job stops accepting pushes (kShutdown) and must be recovered
  /// by restoring a fresh job from checkpoints() — see harness::SupervisedJob.
  Status Health() const;
  bool Failed() const;
  /// Marks the job failed from outside (watchdog-detected stall). The
  /// runner quiesces exactly as on an internal task failure.
  void DeclareFailed(const Status& status);
  /// Per-task liveness samples for stall detection (threaded mode; empty
  /// in sync mode, which cannot stall).
  std::vector<spe::ThreadedRunner::TaskHealthSample> TaskHealth() const;

  void SetResultCallback(ResultCallback callback);

  QosMonitor& qos() { return qos_; }
  const SharedSession& session() const { return session_; }
  /// The job's effective creation options (the isolation manager clones
  /// them for a de-shared whale's dedicated job).
  const Options& options() const { return options_; }

  /// Observability (see DESIGN.md "Observability"). The registry collects
  /// named counters/gauges/histograms plus per-query series; the trace
  /// sink collects lifecycle events. Both live as long as the job.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::TraceSink& trace() { return trace_; }
  const obs::TraceSink& trace() const { return trace_; }

  /// Samples the instantaneous gauges (per-stage records in/out, channel
  /// queue depths, active queries) into the registry, then snapshots it.
  obs::MetricsRegistry::Snapshot MetricsSnapshot();

  /// Aggregated operator instrumentation (Fig. 18 and observability).
  struct OperatorStats {
    int64_t queryset_nanos = 0;   // shared selections
    int64_t fanout_nanos = 0;     // routers (CoW fan-out, not data copies)
    int64_t bitset_ops = 0;       // shared joins + aggregations
    int64_t join_pairs_computed = 0;
    int64_t join_pairs_reused = 0;
    int64_t records_late = 0;
    int64_t selection_records_in = 0;
    int64_t selection_records_out = 0;
    int64_t router_records_out = 0;
    int64_t router_rows_shared = 0;  // fan-out rows shipped by reference
    int64_t router_rows_copied = 0;  // fan-out rows materialized fresh
    int64_t state_arena_bytes = 0;   // slice-store arena footprint
    int64_t reload_saves = 0;        // access-aware evictions avoiding a reload
    int64_t arrange_memo_hits = 0;   // composed-block / join-pair memo hits
    int64_t arrange_memo_misses = 0;
    int64_t arrange_memo_bytes = 0;  // resident composed-block bytes
    int64_t factor_rewrites = 0;     // specs rewritten onto a new lattice
    int64_t factor_reuses = 0;       // specs attached to an existing lattice
    int64_t factor_fallbacks = 0;    // specs kept on exact per-query edges
    int64_t mjoin_chains_computed = 0;  // multiway chain prefixes evaluated
    int64_t mjoin_chains_reused = 0;    // multiway chain-memo hits
    int64_t subjoins_built = 0;      // multiway plans with no reusable prefix
    int64_t subjoins_attached = 0;   // plans attached to a materialized sub-join
    int64_t subjoin_nodes = 0;       // live refcounted sub-join nodes
  };
  OperatorStats CollectStats() const;

  /// Backpressure probe (threaded mode): queued elements across channels.
  size_t QueuedElements() const;

  /// Out-of-core internals (tests/benchmarks). Null when unbudgeted.
  storage::MemoryGovernor* governor() { return governor_.get(); }
  storage::SpillSpace* spill_space() { return spill_space_.get(); }
  /// Null when unbudgeted or compaction is disabled.
  storage::Compactor* compactor() { return compactor_.get(); }

 private:
  explicit AStreamJob(Options options);

  spe::TopologySpec BuildTopology();
  /// Admits queued queries while headroom lasts (front of queue first, so
  /// admission order is deterministic). Called from Pump().
  void MaybeAdmitQueued();
  /// Live fleet p99 event-time latency (ms) for admission decisions.
  double LiveP99() const;
  /// State-byte shares across the windowed operators (ops_mutex_).
  std::map<QueryId, int64_t> ComputeStateShares() const;
  PushResult PushTo(int input, TimestampMs event_time, spe::Row row);
  /// Ships all buffered source tuples downstream as batches. Called before
  /// watermarks, markers, and shutdown — the batch-boundary rule.
  void FlushSourceBatches();
  void HandleSink(int stage, int instance, const spe::StreamElement& el);
  Status ValidateQuery(const QueryDescriptor& desc) const;
  TimestampMs ClampToMarkers(TimestampMs event_time);

  Options options_;
  Clock* clock_;
  obs::MetricsRegistry metrics_;
  obs::TraceSink trace_;
  SharedSession session_;
  QosMonitor qos_;
  AdmissionController admission_;

  // Admission queue: descriptors deferred by the controller, in submit
  // order, with their pre-allocated ids (control thread only, like the
  // source batch formers).
  struct QueuedSubmit {
    QueryId id = -1;
    QueryDescriptor desc;
  };
  std::deque<QueuedSubmit> admission_queue_;
  // Previous cumulative per-query meter readings (MeteredCosts deltas).
  std::map<QueryId, int64_t> metered_prev_;

  // Facade-level cached metric pointers (lock-free recording).
  obs::Counter* m_push_accepted_ = nullptr;
  obs::Counter* m_push_clamped_ = nullptr;
  obs::Counter* m_push_backpressure_ = nullptr;
  obs::Counter* m_push_shutdown_ = nullptr;
  obs::Counter* m_admission_rejected_ = nullptr;
  obs::Counter* m_admission_queued_ = nullptr;
  obs::Histogram* m_deploy_latency_ = nullptr;
  // Per-stage `edge.<stage>.batch_size` histograms, indexed by stage;
  // recorded by the threaded runner's push observer.
  std::vector<obs::Histogram*> edge_batch_hists_;

  // Source-side batch formers, one per external input (control thread
  // only — the facade contract). `source_batch_start_[i]` is the event
  // time of the buffer's first tuple, for the linger policy.
  std::vector<spe::ElementBatch> source_batches_;
  std::vector<TimestampMs> source_batch_start_;
  spe::CheckpointStore checkpoint_store_;
  // Points at options_.checkpoint_store when set, else checkpoint_store_.
  spe::CheckpointStore* store_ = nullptr;
  // Out-of-core engine; both null when the job runs unbudgeted. Declared
  // before runner_: operators unregister from the governor as the runner
  // tears them down, so these must outlive it.
  std::unique_ptr<storage::SpillSpace> spill_space_;
  std::unique_ptr<storage::MemoryGovernor> governor_;
  std::unique_ptr<storage::Compactor> compactor_;
  std::unique_ptr<spe::Runner> runner_;

  // Stage indices (filled by BuildTopology). `inputs_[s]` is the external
  // input index of stream s; input_a_/input_b_ mirror entries 0/1 for the
  // legacy shims.
  int stage_router_ = -1;
  int input_a_ = -1;
  int input_b_ = -1;
  std::vector<int> inputs_;
  size_t total_instances_ = 0;

  // Raw operator pointers for stats; valid while runner_ lives.
  mutable std::mutex ops_mutex_;
  std::vector<SharedSelection*> selections_;
  std::vector<SharedJoin*> joins_;
  std::vector<SharedMultiwayJoin*> mjoins_;
  std::vector<SharedAggregation*> aggregations_;
  std::vector<RouterOperator*> routers_;

  // Session + deployment ack state.
  std::mutex session_mutex_;
  std::condition_variable ack_cv_;
  std::map<int64_t, int> epoch_acks_;  // changelog epoch -> router acks
  int64_t next_mode_epoch_ = 1;
  int64_t next_checkpoint_epoch_ = 1;

  std::mutex callback_mutex_;
  ResultCallback result_callback_;

  bool started_ = false;
  bool finished_ = false;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_ASTREAM_H_
