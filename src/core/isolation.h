#ifndef ASTREAM_CORE_ISOLATION_H_
#define ASTREAM_CORE_ISOLATION_H_

#include <map>
#include <memory>
#include <mutex>

#include "core/astream.h"

namespace astream::core {

/// De-sharing (DESIGN.md §14): ejects a metered "whale" query out of the
/// shared plan into its own dedicated AStreamJob, and hands it back once
/// its cost drops. Output across the migration is byte-identical to the
/// never-migrated shared plan: every window of the whale is emitted
/// exactly once, by exactly one of the two jobs.
///
/// The manager is a facade over the primary job. Route Submit / Cancel /
/// Push* / Pump / SetResultCallback through it so it can (a) remember
/// descriptors for re-submission, (b) duplicate the live feed into the
/// dedicated job while one exists, and (c) rewrite re-admitted query ids
/// back to the id the client knows.
///
/// Migration protocol (all on the control thread):
///
///   Eject:  flush + checkpoint the primary; cancel the whale there
///           (windows ending at or before the cancel marker D1 still
///           drain from the shared plan); restore the checkpoint into a
///           fresh dedicated job; cancel every minnow in it; dup-feed
///           tuples and watermarks from then on. The dedicated egress
///           passes only whale windows ending after D1.
///   Handback: re-submit the whale to the primary with align_origin = its
///           original creation time, so its window lattice re-anchors on
///           the original grid: first shared window [A, A + length) with
///           A = AlignForward(deploy marker, origin, slide). The dedicated
///           job owns window ends up to B = A + length - slide, then
///           drains and dies; primary output under the new id is rewritten
///           to the client-visible id.
///
/// Whale detection and auto re-admission run in Maintain(), polled from
/// the control thread; policy knobs live in SloOptions.
class IsolationManager {
 public:
  /// `primary` must outlive the manager. Policy comes from
  /// primary->options().slo; metering must be on for detection to work.
  explicit IsolationManager(AStreamJob* primary);
  ~IsolationManager();

  IsolationManager(const IsolationManager&) = delete;
  IsolationManager& operator=(const IsolationManager&) = delete;

  /// Facade over the primary job (dup-fed to the dedicated job when one
  /// exists). Ids returned/accepted are client-visible ids.
  Result<QueryId> Submit(const QueryDescriptor& desc);
  Result<AStreamJob::SubmitOutcome> SubmitWithOutcome(
      const QueryDescriptor& desc);
  Status Cancel(QueryId id);
  PushResult PushA(TimestampMs event_time, spe::Row row);
  PushResult PushB(TimestampMs event_time, spe::Row row);
  void PushWatermark(TimestampMs watermark);
  int Pump(bool force = false);
  void SetResultCallback(AStreamJob::ResultCallback callback);

  /// Policy poll (control thread): detect + eject a whale, arm a pending
  /// hand-back once its re-admission deploys, finish a hand-back whose
  /// boundary the watermark passed, auto-readmit a cooled-down whale.
  Status Maintain();

  /// Manual controls (Maintain drives these from policy; tests and the
  /// scenario runner call them directly for determinism).
  Status EjectWhale(QueryId id);
  Status BeginReadmit();

  bool HasDedicated() const { return dedicated_ != nullptr; }
  /// Client-visible id of the currently ejected whale (-1 = none).
  QueryId whale() const { return whale_; }
  bool handing_back() const { return readmit_id_ != -1; }
  int64_t desharings() const { return desharings_; }
  /// The whale's dedicated job (tests; nullptr when none).
  AStreamJob* dedicated() { return dedicated_.get(); }

 private:
  /// The primary-job id currently serving client-visible id `id`.
  QueryId InternalId(QueryId id) const;
  QueryId ExternalId(QueryId internal) const;
  void InstallPrimaryCallback();
  /// Hand-back boundary B once the re-admitted whale's creation marker is
  /// known (it may deploy late when the re-admission was queued).
  void MaybeArmHandover();
  /// Watermark reached B: drain + destroy the dedicated job.
  void FinishHandback();
  Status WaitForCheckpoint(
      int64_t id,
      std::shared_ptr<const spe::CheckpointStore::Checkpoint>* out);
  void TeardownDedicated(bool drain);

  AStreamJob* primary_;
  std::unique_ptr<AStreamJob> dedicated_;

  /// Descriptors by client-visible id (facade submissions only).
  std::map<QueryId, QueryDescriptor> descs_;
  /// Primary id -> client-visible id for re-admitted whales.
  std::map<QueryId, QueryId> rewrite_;
  /// Client-visible id -> current primary id (inverse of rewrite_).
  std::map<QueryId, QueryId> internal_of_;

  QueryId whale_ = -1;           // client-visible id of the ejected whale
  QueryId whale_internal_ = -1;  // its id inside the dedicated job
  QueryId readmit_id_ = -1;      // its new primary id during hand-back
  TimestampMs whale_origin_ = kMinTimestamp;  // original lattice anchor C
  TimestampMs last_watermark_ = kMinTimestamp;
  int64_t desharings_ = 0;
  obs::Counter* m_desharings_ = nullptr;

  /// Egress filter state, read by sink threads in threaded mode.
  /// split_time_ = D1 (whale windows ending after it come from the
  /// dedicated job); handover_end_ = B (ends after it come from the
  /// primary again; kMaxTimestamp while no hand-back is armed).
  std::mutex cb_mutex_;
  TimestampMs split_time_ = kMinTimestamp;
  TimestampMs handover_end_ = kMaxTimestamp;
  AStreamJob::ResultCallback user_cb_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_ISOLATION_H_
