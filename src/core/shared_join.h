#ifndef ASTREAM_CORE_SHARED_JOIN_H_
#define ASTREAM_CORE_SHARED_JOIN_H_

#include <vector>

#include "core/arrangement.h"
#include "core/shared_operator.h"

namespace astream::core {

/// The shared windowed join (Sec. 3.1.4, Fig. 4f).
///
/// Incoming tuples (already tagged by the shared selections) are stored
/// once per slice and side. When a query window [ws, we) triggers, the
/// operator joins every A-slice/B-slice pair inside the window — but each
/// pair is joined exactly once, ever: results are memoized per pair with
/// their combined query-sets (masked through the CL table) and reused by
/// every query and window instance that covers the pair. Slices and memo
/// entries are evicted once no active or draining window can need them.
///
/// Join condition: A.key == B.key (Fig. 7's equi-join; the per-stream
/// selection predicates were applied upstream and live in the tag sets).
class SharedJoin : public SharedWindowedOperator, public storage::SpillClient {
 public:
  explicit SharedJoin(SharedOperatorConfig config);
  ~SharedJoin() override;

  int num_ports() const override { return 2; }
  void ProcessRecord(int port, spe::Record record,
                     spe::Collector* out) override;
  /// Vectorized path: the slice store for `port` is resolved once per run
  /// of same-slice tuples instead of once per tuple, and the hosted-mask
  /// intersection reuses one scratch query-set.
  void ProcessBatch(int port, spe::RecordBatch& records,
                    spe::Collector* out) override;
  Status SnapshotState(spe::StateWriter* writer) override;
  Status RestoreState(spe::StateReader* reader) override;

  /// Observability / Fig. 18 & micro benches.
  int64_t pairs_computed() const { return pairs_computed_; }
  int64_t pairs_reused() const { return pairs_reused_; }
  int64_t bitset_ops() const { return bitset_ops_; }
  int64_t records_late() const { return records_late_; }
  /// Arena bytes backing all live slice stores (the state.arena_bytes
  /// gauge). Refreshed by the task thread after inserts and evictions.
  int64_t state_arena_bytes() const { return state_arena_bytes_; }
  /// Times the access-aware policy evicted something other than the
  /// coldest slice — each one a reload a standing query did not pay
  /// (the storage.reload_saves gauge).
  int64_t reload_saves() const { return reload_saves_; }

  /// storage::SpillClient: spills the coldest (lowest-index) slice of both
  /// sides plus the CL deltas at or below it. Governor-invoked only, on
  /// this operator's task thread.
  size_t SpillOnce() override;

 protected:
  void TriggerWindows(TimestampMs start, TimestampMs end,
                      const std::vector<TriggeredQuery>& queries,
                      spe::Collector* out) override;
  void OnSlicesEvicted(const std::vector<int64_t>& indices) override;
  void OnModeSwitch(StoreMode mode) override;
  int64_t ResidentStateBytes() const override { return state_arena_bytes_; }

 private:
  /// Memoized join of A-slice `a` with B-slice `b` (computed on first use).
  /// `*computed` reports whether this call did the work or hit the memo,
  /// so callers can attribute reuse to the queries they serve.
  const std::vector<JoinedTuple>& MemoFor(int64_t a, int64_t b,
                                          bool* computed);
  /// Recomputes arena/resident byte totals and reports them (with the
  /// coldest resident slice's window end) to the governor, if any.
  void RefreshArenaBytes();
  /// Asks the governor to rebalance; may call SpillOnce on this thread.
  void EnforceBudget();

  /// One tuple arrangement per side; both operators read versioned slices
  /// of the same maintained index instead of private store maps.
  TupleArrangement sides_[2];
  /// (a-slice, b-slice) -> joined tuples with combined, CL-masked tags.
  JoinMemo memo_;

  int64_t pairs_computed_ = 0;
  int64_t pairs_reused_ = 0;
  int64_t bitset_ops_ = 0;
  int64_t records_late_ = 0;
  int64_t state_arena_bytes_ = 0;
  int64_t reload_saves_ = 0;
  // Scratch query-set reused across the tuples of one batch.
  QuerySet scratch_tags_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_SHARED_JOIN_H_
