#ifndef ASTREAM_CORE_QUERY_BUILDER_H_
#define ASTREAM_CORE_QUERY_BUILDER_H_

#include <string>

#include "common/status.h"
#include "core/query.h"

namespace astream::core {

/// Fluent, eagerly-validating constructor for QueryDescriptor.
///
///   auto q = QueryBuilder::Selection()
///                .WhereA(1, CmpOp::kLt, 50)
///                .Build();
///   auto j = QueryBuilder::Join()
///                .WhereA(1, CmpOp::kGt, 10)
///                .WhereB(2, CmpOp::kLe, 99)
///                .TumblingWindow(1000)
///                .Build();
///
/// Each setter validates its arguments immediately; the first error is
/// latched and every later call becomes a no-op, so `Build()` reports the
/// first mistake with a message naming the offending setter. `Build()`
/// additionally enforces cross-field rules (e.g. windowed kinds need a
/// window, selections must not have one).
class QueryBuilder {
 public:
  static QueryBuilder Selection() { return QueryBuilder(QueryKind::kSelection); }
  static QueryBuilder Aggregation() {
    return QueryBuilder(QueryKind::kAggregation);
  }
  static QueryBuilder Join() { return QueryBuilder(QueryKind::kJoin); }
  static QueryBuilder Complex() { return QueryBuilder(QueryKind::kComplex); }
  static QueryBuilder MultiwayJoin() {
    return QueryBuilder(QueryKind::kMultiJoin);
  }

  /// Adds `row[column] op constant` to the stream-A conjunction.
  QueryBuilder& WhereA(int column, CmpOp op, spe::Value constant);
  /// Adds `row[column] op constant` to the stream-B conjunction (join kinds
  /// only).
  QueryBuilder& WhereB(int column, CmpOp op, spe::Value constant);

  /// Adds an input leg reading `stream` to a multiway join, keyed on the
  /// row key (column 0). Legs are emitted in declaration order.
  QueryBuilder& Input(int stream);
  /// Same, with an explicit join-key column list. All legs must declare the
  /// same key arity; the engine currently requires the key to be {0}.
  QueryBuilder& InputKeyed(int stream, std::vector<int> key);
  /// Adds `row[column] op constant` to the conjunction of the leg that
  /// reads `stream` (the leg must have been declared already).
  QueryBuilder& WhereStream(int stream, int column, CmpOp op,
                            spe::Value constant);

  /// Sets the window of the aggregation / join stages.
  QueryBuilder& Window(const spe::WindowSpec& spec);
  QueryBuilder& TumblingWindow(TimestampMs length);
  QueryBuilder& SlidingWindow(TimestampMs length, TimestampMs slide);
  QueryBuilder& SessionWindow(TimestampMs gap);

  /// Sets the aggregation function and input column (aggregation kinds
  /// only).
  QueryBuilder& Agg(spe::AggKind kind, int column);

  /// Sets the join chain length of a complex query (1..kMaxJoinDepth).
  QueryBuilder& JoinDepth(int depth);

  /// Finalizes the descriptor, or returns the first validation error.
  Result<QueryDescriptor> Build() const;

  /// OK while no setter has failed. Lets callers bail out early when
  /// assembling a builder across several statements.
  const Status& status() const { return status_; }

 private:
  explicit QueryBuilder(QueryKind kind);

  /// Latches `error` if no earlier error was recorded.
  void Fail(std::string error);

  QueryDescriptor desc_;
  Status status_;
  bool has_window_ = false;
  bool has_agg_ = false;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_QUERY_BUILDER_H_
