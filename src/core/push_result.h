#ifndef ASTREAM_CORE_PUSH_RESULT_H_
#define ASTREAM_CORE_PUSH_RESULT_H_

#include <cstdint>

namespace astream::core {

/// Outcome of pushing one tuple into a job. The old `bool` return
/// conflated "dropped" with "accepted but adjusted"; callers need to tell
/// the cases apart to attribute drop causes (see ISSUE: per-query cost
/// accounting).
enum class PushResult : uint8_t {
  /// The tuple entered the stream unmodified.
  kAccepted,
  /// The tuple was refused: the job is not started, already finished, or
  /// the runner was cancelled. The tuple is lost; the caller may retry
  /// later or treat it as backpressure.
  kBackpressure,
  /// The tuple was accepted, but its event time was clamped forward onto
  /// the latest changelog marker time to preserve the marker-alignment
  /// invariant (it arrived "late" relative to the control plane).
  kLateClamped,
};

inline const char* PushResultName(PushResult r) {
  switch (r) {
    case PushResult::kAccepted:
      return "accepted";
    case PushResult::kBackpressure:
      return "backpressure";
    case PushResult::kLateClamped:
      return "late_clamped";
  }
  return "unknown";
}

/// True when the tuple entered the stream (possibly clamped).
inline bool Accepted(PushResult r) {
  return r != PushResult::kBackpressure;
}

}  // namespace astream::core

#endif  // ASTREAM_CORE_PUSH_RESULT_H_
