#ifndef ASTREAM_CORE_PUSH_RESULT_H_
#define ASTREAM_CORE_PUSH_RESULT_H_

#include <cstdint>

namespace astream::core {

/// Outcome of pushing one tuple into a job. The old `bool` return
/// conflated "dropped" with "accepted but adjusted"; callers need to tell
/// the cases apart to attribute drop causes (see ISSUE: per-query cost
/// accounting).
enum class PushResult : uint8_t {
  /// The tuple entered the stream unmodified.
  kAccepted,
  /// The tuple was refused *transiently*: the engine is running but could
  /// not take it right now (queues full). The caller may retry.
  kBackpressure,
  /// The tuple was accepted, but its event time was clamped forward onto
  /// the latest changelog marker time to preserve the marker-alignment
  /// invariant (it arrived "late" relative to the control plane).
  kLateClamped,
  /// The tuple was refused *permanently*: the job is not started, already
  /// finished, the runner was cancelled, or the target stream does not
  /// exist. Retrying cannot succeed — distinct from kBackpressure so
  /// drivers do not count shutdown as backpressure.
  kShutdown,
};

inline const char* PushResultName(PushResult r) {
  switch (r) {
    case PushResult::kAccepted:
      return "accepted";
    case PushResult::kBackpressure:
      return "backpressure";
    case PushResult::kLateClamped:
      return "late_clamped";
    case PushResult::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

/// True when the tuple entered the stream (possibly clamped).
inline bool Accepted(PushResult r) {
  return r == PushResult::kAccepted || r == PushResult::kLateClamped;
}

}  // namespace astream::core

#endif  // ASTREAM_CORE_PUSH_RESULT_H_
