#include "core/shared_operator.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/logging.h"
#include "core/window_math.h"

namespace astream::core {

void SharedWindowedOperator::OnMarker(const spe::ControlMarker& marker,
                                      spe::Collector* out) {
  (void)out;
  switch (marker.kind) {
    case spe::MarkerKind::kChangelog: {
      const Changelog* log = Changelog::FromMarker(marker);
      assert(log != nullptr);
      ApplyChangelog(*log);
      break;
    }
    case spe::MarkerKind::kModeSwitch: {
      const auto* payload =
          static_cast<const ModeSwitchPayload*>(marker.payload.get());
      if (payload != nullptr && payload->mode != current_mode_) {
        current_mode_ = payload->mode;
        OnModeSwitch(current_mode_);
      }
      break;
    }
    case spe::MarkerKind::kCheckpointBarrier:
      break;  // snapshots are handled by the runtime
  }
}

void SharedWindowedOperator::ApplyChangelog(const Changelog& log) {
  // 1. Cut the slice boundary first: materializing the gap up to the cut
  //    must use the pre-changelog window edges.
  const bool creates_hosted =
      std::any_of(log.created.begin(), log.created.end(),
                  [&](const QueryActivation& c) {
                    ActiveQuery probe;
                    probe.id = c.id;
                    probe.slot = c.slot;
                    probe.created_at = c.created_at;
                    probe.desc = c.desc;
                    return config_.hosts(probe);
                  });
  if (tracker_.Initialized() || creates_hosted) {
    tracker_.CutAt(log.time, log.changelog_set);
  }

  // 2. Capture hosted deletions before the table drops them.
  std::vector<DrainingQuery> newly_draining;
  for (const QueryDeactivation& d : log.deleted) {
    const ActiveQuery* q = table_.QueryAt(d.slot);
    if (q != nullptr && q->id == d.id && config_.hosts(*q)) {
      DrainingQuery dq;
      dq.query = *q;
      dq.deleted_at = log.time;
      newly_draining.push_back(std::move(dq));
    }
  }

  const Status apply_status = table_.Apply(log);
  if (!apply_status.ok()) {
    ASTREAM_LOG(kError, "shared-op")
        << "changelog apply failed: " << apply_status.ToString();
    return;
  }
  tracker_.SetNumSlots(table_.num_slots());

  for (DrainingQuery& dq : newly_draining) {
    tracker_.RemoveQuery(dq.query.slot);
    if (dq.query.desc.window.IsTimeWindow()) {
      // Kept until the last completed window (end <= deleted_at) emitted.
      const QueryId id = dq.query.id;
      draining_[id] = std::move(dq);
      OnQueryDeleted(draining_[id]);
    } else {
      // Session windows drain inside the subclass (no trigger-queue
      // entries exist for them).
      OnQueryDeleted(dq);
    }
  }

  // 3. Register new hosted queries: window edges + first trigger.
  for (const QueryActivation& c : log.created) {
    const ActiveQuery* q = table_.QueryAt(c.slot);
    if (q == nullptr || q->id != c.id || !config_.hosts(*q)) continue;
    if (q->desc.window.IsTimeWindow()) {
      // Normally windows anchor at the creation marker; a re-admitted
      // query (DESIGN.md §14) instead lands on the forward-aligned lattice
      // of its original creation so the hand-back tiles without overlap.
      TimestampMs anchor = q->created_at;
      if (q->desc.align_origin != kMinTimestamp && q->desc.window.slide > 0) {
        anchor = AlignForward(q->created_at, q->desc.align_origin,
                              q->desc.window.slide);
      }
      tracker_.AddQuery(q->slot, anchor, q->desc.window);
      TriggerEntry entry;
      entry.window_start = anchor;
      entry.window_end = anchor + q->desc.window.length;
      entry.slot = q->slot;
      entry.id = q->id;
      triggers_.Schedule(entry);
    }
    OnQueryCreated(*q);
  }

  hosted_mask_ = table_.SlotsWhere(config_.hosts);
  if (config_.adaptive_mode) MaybeSwitchMode();
  RebuildSlotSeries();
  OnActiveSetChanged();
}

void SharedWindowedOperator::RebuildSlotSeries() {
  if (!metrics_on_) return;
  slot_series_.assign(table_.num_slots(), nullptr);
  table_.ForEach([&](const ActiveQuery& q) {
    if (hosted_mask_.Test(q.slot)) {
      slot_series_[q.slot] = series_cache_.For(q.id);
    }
  });
}

void SharedWindowedOperator::MaybeSwitchMode() {
  // Sec. 3.1.4: beyond ~10 concurrent queries most query-set groups hold a
  // single tuple, so the flat list wins; below that, grouping pays.
  const size_t active_hosted = hosted_mask_.Count();
  const StoreMode desired =
      active_hosted > 10 ? StoreMode::kList : StoreMode::kGrouped;
  if (desired != current_mode_) {
    current_mode_ = desired;
    OnModeSwitch(desired);
  }
}

void SharedWindowedOperator::OnWatermark(TimestampMs watermark,
                                         spe::Collector* out) {
  current_watermark_ = watermark;

  // Collect all due windows, resolving each against active / draining
  // queries and rescheduling the query's next window.
  struct DueWindow {
    TimestampMs start = 0;
    TimestampMs end = 0;
    TriggeredQuery tq;
  };
  std::vector<DueWindow> due;
  std::vector<QueryId> drained_done;
  while (auto entry = triggers_.PopDue(watermark)) {
    const ActiveQuery* active = table_.QueryAt(entry->slot);
    const ActiveQuery* resolved = nullptr;
    bool drain_more = false;
    TimestampMs drain_limit = 0;
    if (active != nullptr && active->id == entry->id) {
      resolved = active;
    } else {
      auto it = draining_.find(entry->id);
      if (it != draining_.end()) {
        if (entry->window_end <= it->second.deleted_at) {
          resolved = &it->second.query;
          drain_more = true;
          drain_limit = it->second.deleted_at;
        } else {
          draining_.erase(it);  // all completed windows emitted
        }
      }
    }
    if (resolved == nullptr) continue;

    // Suppress provably empty windows at end of stream so the reschedule
    // chain terminates.
    const bool beyond_data = watermark == kMaxTimestamp &&
                             entry->window_start > max_seen_event_time_;
    if (!beyond_data) {
      DueWindow w;
      w.start = entry->window_start;
      w.end = entry->window_end;
      w.tq.query = resolved;
      w.tq.draining = drain_more;
      due.push_back(w);
    }

    // Reschedule the next window instance. Draining entries are erased
    // only after the trigger pass below (`due` holds pointers into them).
    const TimestampMs slide = resolved->desc.window.slide;
    TriggerEntry next = *entry;
    next.window_start += slide;
    next.window_end += slide;
    const bool terminate =
        beyond_data || (drain_more && next.window_end > drain_limit);
    if (terminate) {
      if (drain_more) drained_done.push_back(entry->id);
    } else {
      triggers_.Schedule(next);
    }
  }

  // Deterministic evaluation order; share one evaluation across queries
  // with the identical window interval.
  std::sort(due.begin(), due.end(), [](const DueWindow& a,
                                       const DueWindow& b) {
    if (a.end != b.end) return a.end < b.end;
    if (a.start != b.start) return a.start < b.start;
    return a.tq.query->slot < b.tq.query->slot;
  });
  size_t i = 0;
  while (i < due.size()) {
    size_t j = i;
    std::vector<TriggeredQuery> group;
    while (j < due.size() && due[j].start == due[i].start &&
           due[j].end == due[i].end) {
      group.push_back(due[j].tq);
      ++j;
    }
    if (meter_on_) {
      // Bill the trigger's wall time evenly across the queries sharing
      // this window evaluation (the shared computation is the point: each
      // query pays 1/k of it).
      const auto t0 = std::chrono::steady_clock::now();
      TriggerWindows(due[i].start, due[i].end, group, out);
      const int64_t nanos =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const int64_t share =
          std::max<int64_t>(1, nanos / static_cast<int64_t>(group.size()));
      for (const TriggeredQuery& tq : group) {
        if (obs::QuerySeries* s = SeriesForQuery(tq.query->id)) {
          s->cost_cpu_nanos.Add(share);
        }
      }
    } else {
      TriggerWindows(due[i].start, due[i].end, group, out);
    }
    i = j;
  }
  for (QueryId id : drained_done) draining_.erase(id);

  OnWatermarkTail(watermark, out);
  EvictExpired(watermark);
}

void SharedWindowedOperator::AppendStateShares(
    std::map<QueryId, int64_t>* out) const {
  const int64_t resident = ResidentStateBytes();
  if (resident <= 0) return;
  // Window span is the retention driver: a query's share of the arena is
  // proportional to how much event time it forces the operator to keep.
  std::vector<std::pair<QueryId, TimestampMs>> spans;
  TimestampMs total = 0;
  table_.ForEach([&](const ActiveQuery& q) {
    if (config_.hosts(q) && q.desc.window.IsTimeWindow()) {
      spans.emplace_back(q.id, q.desc.window.length);
      total += q.desc.window.length;
    }
  });
  if (total <= 0) return;
  for (const auto& [id, span] : spans) {
    (*out)[id] += resident * span / total;
  }
}

TimestampMs SharedWindowedOperator::MaxWindowSpan() const {
  TimestampMs span = 0;
  table_.ForEach([&](const ActiveQuery& q) {
    if (config_.hosts(q) && q.desc.window.IsTimeWindow()) {
      span = std::max(span, q.desc.window.length);
    }
  });
  for (const auto& [id, dq] : draining_) {
    if (dq.query.desc.window.IsTimeWindow()) {
      span = std::max(span, dq.query.desc.window.length);
    }
  }
  return span;
}

void SharedWindowedOperator::EvictExpired(TimestampMs watermark) {
  TimestampMs horizon;
  if (watermark == kMaxTimestamp) {
    horizon = kMaxTimestamp;
  } else {
    const TimestampMs span = MaxWindowSpan();
    horizon = watermark - span;
    if (horizon > watermark) horizon = kMinTimestamp;  // underflow guard
  }
  std::vector<int64_t> evicted = tracker_.EvictBefore(horizon);
  if (!evicted.empty()) OnSlicesEvicted(evicted);
}

void SharedWindowedOperator::SerializeBase(spe::StateWriter* writer) const {
  table_.Serialize(writer);
  tracker_.Serialize(writer);
  triggers_.Serialize(writer);
  writer->WriteU64(draining_.size());
  for (const auto& [id, dq] : draining_) {
    writer->WriteI64(dq.query.id);
    writer->WriteI64(dq.query.slot);
    writer->WriteI64(dq.query.created_at);
    dq.query.desc.Serialize(writer);
    writer->WriteI64(dq.deleted_at);
  }
  writer->WriteBitset(hosted_mask_);
  writer->WriteI64(static_cast<int64_t>(current_mode_));
  writer->WriteI64(max_seen_event_time_);
  writer->WriteI64(current_watermark_);
}

Status SharedWindowedOperator::RestoreBase(spe::StateReader* reader) {
  ASTREAM_RETURN_IF_ERROR(table_.Restore(reader));
  ASTREAM_RETURN_IF_ERROR(tracker_.Restore(reader));
  ASTREAM_RETURN_IF_ERROR(triggers_.Restore(reader));
  draining_.clear();
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    DrainingQuery dq;
    dq.query.id = reader->ReadI64();
    dq.query.slot = static_cast<int>(reader->ReadI64());
    dq.query.created_at = reader->ReadI64();
    dq.query.desc = QueryDescriptor::Deserialize(reader);
    dq.deleted_at = reader->ReadI64();
    draining_[dq.query.id] = std::move(dq);
  }
  hosted_mask_ = reader->ReadBitset();
  current_mode_ = static_cast<StoreMode>(reader->ReadI64());
  RebuildSlotSeries();
  max_seen_event_time_ = reader->ReadI64();
  current_watermark_ = kMinTimestamp;  // rebuilt by replayed watermarks
  reader->ReadI64();                   // stored watermark (diagnostics only)
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad shared-operator snapshot");
}

}  // namespace astream::core
