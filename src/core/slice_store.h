#ifndef ASTREAM_CORE_SLICE_STORE_H_
#define ASTREAM_CORE_SLICE_STORE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "spe/aggregate.h"
#include "spe/state.h"

namespace astream::core {

/// Physical layout of a slice's tuples (Sec. 3.1.4 / 3.2.3).
enum class StoreMode : uint8_t {
  /// Tuples grouped by their query-set; joining prunes whole group pairs
  /// whose query-sets do not intersect. Wins with few concurrent queries.
  kGrouped,
  /// Flat per-key lists with per-tuple query-sets. Wins once most groups
  /// would hold a single tuple (> ~10 concurrent queries in the paper's
  /// experiments).
  kList,
};

/// Tuples of one slice of one join side. Each tuple is stored exactly once
/// (Sec. 3.2.2: no data copy inside slices).
class TupleStore {
 public:
  explicit TupleStore(StoreMode mode) : mode_(mode) {}

  void Insert(const spe::Row& row, const QuerySet& tags);

  /// Converts the physical layout in place (triggered by the shared
  /// session's mode-switch marker or the adaptive heuristic).
  void ConvertTo(StoreMode mode);

  StoreMode mode() const { return mode_; }
  size_t NumTuples() const { return num_tuples_; }
  /// Number of distinct query-set groups (grouped mode; == NumTuples in
  /// list mode where grouping is abandoned).
  size_t NumGroups() const;
  /// Average tuples per query-set group — the paper's switch heuristic
  /// ("if the average is less than two ... switch to a list").
  double AvgGroupSize() const;

  /// Emits every (rowA, rowB, tagsA & tagsB & mask) with rowA from `a`,
  /// rowB from `b`, equal keys, and a non-empty combined tag set.
  /// `mask` is the CL-set between the two slices.
  using JoinEmit = std::function<void(const spe::Row& left,
                                      const spe::Row& right,
                                      QuerySet tags)>;
  /// Returns the number of bitset AND/intersection operations performed
  /// (Fig. 18 overhead accounting).
  static int64_t Join(const TupleStore& a, const TupleStore& b,
                      const QuerySet& mask, const JoinEmit& emit);

  /// Calls fn(row, tags) for every stored tuple.
  void ForEach(
      const std::function<void(const spe::Row&, const QuerySet&)>& fn) const;

  void Serialize(spe::StateWriter* writer) const;
  static TupleStore Deserialize(spe::StateReader* reader);

 private:
  using KeyedRows = std::unordered_map<spe::Value, std::vector<spe::Row>>;
  using KeyedTagged = std::unordered_map<
      spe::Value, std::vector<std::pair<spe::Row, QuerySet>>>;

  StoreMode mode_;
  size_t num_tuples_ = 0;
  // kGrouped: query-set -> key -> rows.
  std::unordered_map<QuerySet, KeyedRows, DynamicBitsetHash> groups_;
  // kList: key -> (row, tags).
  KeyedTagged list_;
};

/// Per-slice intermediate aggregates (Sec. 3.1.5): instead of materializing
/// tuples, each slice keeps, per key, one accumulator per query slot; the
/// tuple is discarded after updating every interested query's accumulator.
class AggStore {
 public:
  /// Adds `value` to the accumulator of (key, slot).
  void Add(spe::Value key, int slot, spe::Value value);

  /// The accumulator for (key, slot), or nullptr if empty.
  const spe::Accumulator* Find(spe::Value key, int slot) const;

  /// Calls fn(key, accumulator) for every key with data in `slot`.
  void ForEachKey(int slot,
                  const std::function<void(spe::Value,
                                           const spe::Accumulator&)>& fn)
      const;

  size_t NumKeys() const { return keys_.size(); }

  void Serialize(spe::StateWriter* writer) const;
  static AggStore Deserialize(spe::StateReader* reader);

 private:
  // key -> slot-indexed accumulators (count == 0 means empty slot).
  std::unordered_map<spe::Value, std::vector<spe::Accumulator>> keys_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_SLICE_STORE_H_
