#ifndef ASTREAM_CORE_SLICE_STORE_H_
#define ASTREAM_CORE_SLICE_STORE_H_

#include <functional>
#include <memory>
#include <scoped_allocator>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "core/query.h"
#include "spe/aggregate.h"
#include "spe/state.h"

namespace astream::core {

/// Physical layout of a slice's tuples (Sec. 3.1.4 / 3.2.3).
enum class StoreMode : uint8_t {
  /// Tuples grouped by their query-set; joining prunes whole group pairs
  /// whose query-sets do not intersect. Wins with few concurrent queries.
  kGrouped,
  /// Flat per-key lists with per-tuple query-sets. Wins once most groups
  /// would hold a single tuple (> ~10 concurrent queries in the paper's
  /// experiments).
  kList,
};

/// Tuples of one slice of one join side. Each tuple is stored exactly once
/// (Sec. 3.2.2: no data copy inside slices).
///
/// All container memory (hash buckets, map nodes, row vectors) lives in a
/// per-store bump-pointer arena: a slice's bookkeeping is allocated with
/// pointer bumps and freed wholesale when the slice expires and its store
/// is destroyed — no per-node free traffic on the eviction path. Row
/// payloads are NOT in the arena: rows are copy-on-write and shared across
/// slices, queries and operators; the arena owns only this slice's view of
/// them. A consequence: ConvertTo() and clear() return no memory until the
/// store dies (acceptable — slices are short-lived by construction).
class TupleStore {
 public:
  explicit TupleStore(StoreMode mode);

  void Insert(const spe::Row& row, const QuerySet& tags);

  /// Converts the physical layout in place (triggered by the shared
  /// session's mode-switch marker or the adaptive heuristic).
  void ConvertTo(StoreMode mode);

  StoreMode mode() const { return mode_; }
  size_t NumTuples() const { return num_tuples_; }
  /// Number of distinct query-set groups (grouped mode; == NumTuples in
  /// list mode where grouping is abandoned).
  size_t NumGroups() const;
  /// Average tuples per query-set group — the paper's switch heuristic
  /// ("if the average is less than two ... switch to a list").
  double AvgGroupSize() const;

  /// Arena footprint of this store's bookkeeping (the arena-bytes gauge).
  size_t ArenaBytes() const { return arena_->bytes_reserved(); }

  /// Emits every (rowA, rowB, tagsA & tagsB & mask) with rowA from `a`,
  /// rowB from `b`, equal keys, and a non-empty combined tag set.
  /// `mask` is the CL-set between the two slices.
  using JoinEmit = std::function<void(const spe::Row& left,
                                      const spe::Row& right,
                                      QuerySet tags)>;
  /// Returns the number of bitset AND/intersection operations performed
  /// (Fig. 18 overhead accounting).
  static int64_t Join(const TupleStore& a, const TupleStore& b,
                      const QuerySet& mask, const JoinEmit& emit);

  /// Calls fn(row, tags) for every stored tuple.
  void ForEach(
      const std::function<void(const spe::Row&, const QuerySet&)>& fn) const;

  void Serialize(spe::StateWriter* writer) const;
  static TupleStore Deserialize(spe::StateReader* reader);

 private:
  template <typename T>
  using AA = ArenaAllocator<T>;
  // scoped_allocator_adaptor propagates the arena into nested containers
  // (map -> vector) at construction, so groups_[tags][key].push_back(row)
  // bumps one arena end to end.
  using RowVec = std::vector<spe::Row, AA<spe::Row>>;
  using KeyedRows = std::unordered_map<
      spe::Value, RowVec, std::hash<spe::Value>, std::equal_to<spe::Value>,
      std::scoped_allocator_adaptor<AA<std::pair<const spe::Value, RowVec>>>>;
  using TaggedRow = std::pair<spe::Row, QuerySet>;
  using TaggedVec = std::vector<TaggedRow, AA<TaggedRow>>;
  using KeyedTagged = std::unordered_map<
      spe::Value, TaggedVec, std::hash<spe::Value>,
      std::equal_to<spe::Value>,
      std::scoped_allocator_adaptor<
          AA<std::pair<const spe::Value, TaggedVec>>>>;
  using GroupedMap = std::unordered_map<
      QuerySet, KeyedRows, DynamicBitsetHash, std::equal_to<QuerySet>,
      std::scoped_allocator_adaptor<AA<std::pair<const QuerySet, KeyedRows>>>>;

  StoreMode mode_;
  size_t num_tuples_ = 0;
  // Declared before the containers (and so destroyed after them): the
  // unique_ptr keeps the arena's address stable across store moves.
  std::unique_ptr<Arena> arena_;
  // kGrouped: query-set -> key -> rows.
  GroupedMap groups_;
  // kList: key -> (row, tags).
  KeyedTagged list_;
};

/// Per-slice intermediate aggregates (Sec. 3.1.5): instead of materializing
/// tuples, each slice keeps, per key, one accumulator per query slot; the
/// tuple is discarded after updating every interested query's accumulator.
/// Backed by the same per-store arena scheme as TupleStore.
class AggStore {
 public:
  AggStore();

  /// Adds `value` to the accumulator of (key, slot).
  void Add(spe::Value key, int slot, spe::Value value);

  /// The accumulator for (key, slot), or nullptr if empty.
  const spe::Accumulator* Find(spe::Value key, int slot) const;

  /// Calls fn(key, accumulator) for every key with data in `slot`.
  void ForEachKey(int slot,
                  const std::function<void(spe::Value,
                                           const spe::Accumulator&)>& fn)
      const;

  size_t NumKeys() const { return keys_.size(); }

  /// Arena footprint of this store's bookkeeping (the arena-bytes gauge).
  size_t ArenaBytes() const { return arena_->bytes_reserved(); }

  void Serialize(spe::StateWriter* writer) const;
  static AggStore Deserialize(spe::StateReader* reader);

 private:
  template <typename T>
  using AA = ArenaAllocator<T>;
  using AccVec = std::vector<spe::Accumulator, AA<spe::Accumulator>>;
  using KeyedAccs = std::unordered_map<
      spe::Value, AccVec, std::hash<spe::Value>, std::equal_to<spe::Value>,
      std::scoped_allocator_adaptor<AA<std::pair<const spe::Value, AccVec>>>>;

  std::unique_ptr<Arena> arena_;
  // key -> slot-indexed accumulators (count == 0 means empty slot).
  KeyedAccs keys_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_SLICE_STORE_H_
