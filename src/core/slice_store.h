#ifndef ASTREAM_CORE_SLICE_STORE_H_
#define ASTREAM_CORE_SLICE_STORE_H_

#include <functional>
#include <memory>
#include <scoped_allocator>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "core/query.h"
#include "spe/aggregate.h"
#include "spe/state.h"
#include "storage/compactor.h"
#include "storage/merge.h"
#include "storage/spill_space.h"

namespace astream::core {

/// Physical layout of a slice's tuples (Sec. 3.1.4 / 3.2.3).
enum class StoreMode : uint8_t {
  /// Tuples grouped by their query-set; joining prunes whole group pairs
  /// whose query-sets do not intersect. Wins with few concurrent queries.
  kGrouped,
  /// Flat per-key lists with per-tuple query-sets. Wins once most groups
  /// would hold a single tuple (> ~10 concurrent queries in the paper's
  /// experiments).
  kList,
};

/// Tuples of one slice of one join side. Each tuple is stored exactly once
/// (Sec. 3.2.2: no data copy inside slices).
///
/// All container memory (hash buckets, map nodes, row vectors) lives in a
/// per-store bump-pointer arena: a slice's bookkeeping is allocated with
/// pointer bumps and freed wholesale when the slice expires and its store
/// is destroyed — no per-node free traffic on the eviction path. Row
/// payloads are NOT in the arena: rows are copy-on-write and shared across
/// slices, queries and operators; the arena owns only this slice's view of
/// them.
///
/// Out-of-core (DESIGN.md §10): a store bound to a SpillSpace can move its
/// entire resident population to an immutable key-sorted run file
/// (SpillToDisk) — the arena and containers are rebuilt from scratch, so
/// the memory is actually returned, not just logically cleared. A store
/// may hold several runs (it keeps receiving inserts after a spill).
/// Joins over spilled stores run as a streaming group-wise sorted merge
/// (one key group in memory per side); full logical content is still
/// reachable via ForEach/Serialize, so checkpoints and mode semantics are
/// unchanged.
class TupleStore {
 public:
  explicit TupleStore(StoreMode mode);

  /// Enables SpillToDisk; unbound stores never spill.
  void BindSpill(storage::SpillSpace* space) { spill_ = space; }

  /// Enables background run compaction: SpillToDisk schedules a fold of
  /// the oldest runs once their count reaches the compactor's threshold,
  /// and read/spill paths adopt finished results (AdoptCompaction).
  void BindCompactor(storage::Compactor* compactor) {
    compactor_ = compactor;
  }

  void Insert(const spe::Row& row, const QuerySet& tags);

  /// Converts the physical layout in place (triggered by the shared
  /// session's mode-switch marker or the adaptive heuristic). Applies to
  /// resident tuples; spilled runs are layout-free (sorted by key).
  void ConvertTo(StoreMode mode);

  StoreMode mode() const { return mode_; }
  size_t NumTuples() const { return num_tuples_; }
  size_t NumResidentTuples() const { return resident_tuples_; }
  bool HasSpill() const { return !runs_.empty(); }
  /// Number of distinct query-set groups (grouped mode; == NumTuples in
  /// list mode where grouping is abandoned). Resident tuples only.
  size_t NumGroups() const;
  /// Average tuples per query-set group — the paper's switch heuristic
  /// ("if the average is less than two ... switch to a list").
  double AvgGroupSize() const;

  /// Arena footprint of this store's bookkeeping (the arena-bytes gauge).
  size_t ArenaBytes() const { return res_->arena->bytes_reserved(); }

  /// Estimated resident footprint: arena bookkeeping plus the (heap) row
  /// payloads this store keeps alive. Rows shared with other stores are
  /// counted in each — an upper bound, which is the safe direction for a
  /// budget.
  size_t ResidentBytes() const {
    return res_->arena->bytes_reserved() + payload_bytes_;
  }

  /// Spills every resident tuple as one key-sorted run and rebuilds the
  /// store empty. Returns the resident bytes released; 0 when unbound,
  /// empty, or the write failed (the store is then left untouched).
  size_t SpillToDisk();

  /// Emits every (rowA, rowB, tagsA & tagsB & mask) with rowA from `a`,
  /// rowB from `b`, equal keys, and a non-empty combined tag set.
  /// `mask` is the CL-set between the two slices.
  using JoinEmit = std::function<void(const spe::Row& left,
                                      const spe::Row& right,
                                      QuerySet tags)>;
  /// Returns the number of bitset AND/intersection operations performed
  /// (Fig. 18 overhead accounting). Fully resident stores use the hash
  /// paths; once either side holds runs, the join switches to a sorted
  /// group-wise merge that never rematerializes a run in memory.
  static int64_t Join(const TupleStore& a, const TupleStore& b,
                      const QuerySet& mask, const JoinEmit& emit);

  /// One tuple of a sorted scan.
  struct ScanEntry {
    int64_t key = 0;
    spe::Row row;
    QuerySet tags;
  };

  /// Streaming key-ordered view over resident tuples + all runs. Holds
  /// references to the runs it reads, so eviction of the store mid-scan
  /// cannot unlink files under the iterator. Memory: one run block per
  /// run plus the sorted resident snapshot.
  class SortedStream {
   public:
    bool Next(ScanEntry* out) { return merge_->Next(out); }

   private:
    friend class TupleStore;
    SortedStream() = default;
    std::vector<ScanEntry> resident_;
    size_t resident_pos_ = 0;
    std::vector<storage::SpilledRunPtr> runs_;
    std::vector<std::unique_ptr<storage::RunReader>> readers_;
    std::unique_ptr<storage::KWayMerge<ScanEntry>> merge_;
  };
  std::unique_ptr<SortedStream> SortedScan() const;

  /// Calls fn(row, tags) for every stored tuple — spilled runs first (in
  /// spill order), then resident.
  void ForEach(
      const std::function<void(const spe::Row&, const QuerySet&)>& fn) const;

  void Serialize(spe::StateWriter* writer) const;
  static TupleStore Deserialize(spe::StateReader* reader);

 private:
  template <typename T>
  using AA = ArenaAllocator<T>;
  // scoped_allocator_adaptor propagates the arena into nested containers
  // (map -> vector) at construction, so groups_[tags][key].push_back(row)
  // bumps one arena end to end.
  using RowVec = std::vector<spe::Row, AA<spe::Row>>;
  using KeyedRows = std::unordered_map<
      spe::Value, RowVec, std::hash<spe::Value>, std::equal_to<spe::Value>,
      std::scoped_allocator_adaptor<AA<std::pair<const spe::Value, RowVec>>>>;
  using TaggedRow = std::pair<spe::Row, QuerySet>;
  using TaggedVec = std::vector<TaggedRow, AA<TaggedRow>>;
  using KeyedTagged = std::unordered_map<
      spe::Value, TaggedVec, std::hash<spe::Value>,
      std::equal_to<spe::Value>,
      std::scoped_allocator_adaptor<
          AA<std::pair<const spe::Value, TaggedVec>>>>;
  using GroupedMap = std::unordered_map<
      QuerySet, KeyedRows, DynamicBitsetHash, std::equal_to<QuerySet>,
      std::scoped_allocator_adaptor<AA<std::pair<const QuerySet, KeyedRows>>>>;

  /// Resident state as one unit: spilling destroys and rebuilds the whole
  /// struct, which is the only way arena-backed containers actually give
  /// memory back (the arena frees wholesale on destruction).
  struct Resident {
    Resident();
    // Declared before the containers (and so destroyed after them): the
    // unique_ptr keeps the arena's address stable across store moves.
    std::unique_ptr<Arena> arena;
    // kGrouped: query-set -> key -> rows.
    GroupedMap groups;
    // kList: key -> (row, tags).
    KeyedTagged list;
  };

  void ForEachResident(
      const std::function<void(const spe::Row&, const QuerySet&)>& fn) const;
  static int64_t MergeJoin(const TupleStore& a, const TupleStore& b,
                           const QuerySet& mask, const JoinEmit& emit);
  /// Folds a settled compaction into runs_ (swap the input prefix for the
  /// output run) and/or schedules a new one. Called from the owning task
  /// thread's read and spill paths; const because reads are const — the
  /// run list is physical layout, not logical state.
  void AdoptCompaction() const;
  void MaybeScheduleCompaction() const;

  StoreMode mode_;
  size_t num_tuples_ = 0;
  size_t resident_tuples_ = 0;
  size_t payload_bytes_ = 0;
  std::unique_ptr<Resident> res_;
  storage::SpillSpace* spill_ = nullptr;
  storage::Compactor* compactor_ = nullptr;
  mutable std::vector<storage::SpilledRunPtr> runs_;
  mutable storage::CompactionTicketPtr compaction_;
};

/// Per-slice intermediate aggregates (Sec. 3.1.5 + DESIGN.md §12): instead
/// of materializing tuples, each slice keeps, per key, *group-shared*
/// partials — one accumulator per distinct query-set group. Every query
/// whose slot is in a group's tag set reads the same accumulator, so a
/// tuple costs one Add per distinct aggregated column no matter how many
/// queries cover the slice; the pre-arrangement layout (one accumulator
/// per query slot) is the degenerate case where every group is the
/// singleton of one slot, which is exactly what the operator feeds this
/// store when cross-window sharing is disabled.
///
/// Backed by the same per-store arena scheme as TupleStore, with the same
/// spill contract: SpillToDisk writes a key-sorted run of (key, groups)
/// entries and rebuilds the resident side empty; finalize reads through
/// ForEachGroupsMerged, which folds same-key groups across the resident
/// population and every run in one streaming pass.
class AggStore {
 public:
  /// One shared partial: the accumulator of every tuple that arrived with
  /// exactly this (masked) tag set.
  struct Group {
    QuerySet tags;
    spe::Accumulator acc;
  };

  AggStore();

  /// Enables SpillToDisk; unbound stores never spill.
  void BindSpill(storage::SpillSpace* space) { spill_ = space; }

  /// See TupleStore::BindCompactor.
  void BindCompactor(storage::Compactor* compactor) {
    compactor_ = compactor;
  }

  /// Folds `value` into the group of `tags` under `key`, creating the
  /// group on first touch. `tags` must be non-empty.
  void Add(spe::Value key, const QuerySet& tags, spe::Value value);

  /// The merged accumulator over every group whose tag set contains
  /// `slot` — the per-query view of the shared partials. Resident side
  /// only (tests/diagnostics); finalize paths go through the arrangement.
  spe::Accumulator SlotAccumulator(spe::Value key, int slot) const;

  /// Calls fn(key, groups, count) for every key, resident + spilled. With
  /// no runs this iterates the resident map directly (unordered);
  /// otherwise keys stream in ascending order with same-key, same-tag
  /// groups folded. Callers must not retain the pointer past the call.
  using GroupsFn =
      std::function<void(spe::Value, const Group*, size_t)>;
  void ForEachGroupsMerged(const GroupsFn& fn) const;

  /// Resident keys (spilled keys are not counted; a key present both
  /// resident and in runs counts once).
  size_t NumKeys() const { return res_->keys.size(); }
  bool HasSpill() const { return !runs_.empty(); }

  /// Arena footprint of this store's bookkeeping (the arena-bytes gauge).
  size_t ArenaBytes() const { return res_->arena->bytes_reserved(); }
  /// Accumulators and bookkeeping both live in the arena.
  size_t ResidentBytes() const { return res_->arena->bytes_reserved(); }

  /// Spills all resident partials as one key-sorted run and rebuilds the
  /// store empty. Returns resident bytes released; 0 when unbound, empty,
  /// or the write failed.
  size_t SpillToDisk();

  void Serialize(spe::StateWriter* writer) const;
  static AggStore Deserialize(spe::StateReader* reader);

 private:
  template <typename T>
  using AA = ArenaAllocator<T>;
  using GroupVec = std::vector<Group, AA<Group>>;
  using KeyedGroups = std::unordered_map<
      spe::Value, GroupVec, std::hash<spe::Value>, std::equal_to<spe::Value>,
      std::scoped_allocator_adaptor<AA<std::pair<const spe::Value, GroupVec>>>>;

  /// See TupleStore::Resident.
  struct Resident {
    Resident();
    std::unique_ptr<Arena> arena;
    // key -> query-set groups (linear scan: distinct tag sets per key are
    // few — typically one per changelog generation the slice spans).
    KeyedGroups keys;
  };

  struct ScanEntry {
    int64_t key = 0;
    std::vector<Group> groups;
  };

  /// Merged ascending-key iteration over resident + runs; fn sees each
  /// key once with its fully folded group vector.
  void ForEachMergedEntry(
      const std::function<void(spe::Value, const std::vector<Group>&)>& fn)
      const;
  /// See TupleStore::AdoptCompaction / MaybeScheduleCompaction.
  void AdoptCompaction() const;
  void MaybeScheduleCompaction() const;

  std::unique_ptr<Resident> res_;
  storage::SpillSpace* spill_ = nullptr;
  storage::Compactor* compactor_ = nullptr;
  mutable std::vector<storage::SpilledRunPtr> runs_;
  mutable storage::CompactionTicketPtr compaction_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_SLICE_STORE_H_
