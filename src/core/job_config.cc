#include "core/job_config.h"

namespace astream {

namespace {

bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Status ValidateJobOptions(const core::AStreamJob::Options& options) {
  if (options.parallelism < 1) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  if (options.max_join_stages < 1 ||
      options.max_join_stages > core::kMaxJoinDepth) {
    return Status::InvalidArgument("max_join_stages out of range");
  }
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.batch_linger_ms < 0) {
    return Status::InvalidArgument("batch_linger_ms must be >= 0");
  }
  if (options.channel_capacity < 1) {
    return Status::InvalidArgument("channel_capacity must be >= 1");
  }
  if (options.session.batch_size < 1) {
    return Status::InvalidArgument("session.batch_size must be >= 1");
  }
  if (options.session.max_timeout_ms < 0) {
    return Status::InvalidArgument("session.max_timeout_ms must be >= 0");
  }
  if (options.checkpoint_retention < 1) {
    return Status::InvalidArgument("checkpoint_retention must be >= 1");
  }
  if (options.first_checkpoint_id < 1) {
    return Status::InvalidArgument("first_checkpoint_id must be >= 1");
  }
  return Status::OK();
}

Result<JobConfig> JobConfig::Validated(JobConfig config) {
  ASTREAM_RETURN_IF_ERROR(ValidateJobOptions(config.job));
  if (config.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (config.slots < config.shards) {
    return Status::InvalidArgument(
        "slots must be >= shards (each shard owns at least one slot)");
  }
  if (config.shard_threads && !IsPowerOfTwo(config.ingress_capacity)) {
    return Status::InvalidArgument(
        "ingress_capacity must be a power of two");
  }
  if (!config.state_dir.empty() && !config.supervised) {
    return Status::InvalidArgument(
        "state_dir (durable shard checkpoints) requires supervised");
  }
  if (config.supervised && config.job.checkpoint_store != nullptr) {
    return Status::InvalidArgument(
        "supervised shards own their checkpoint stores; "
        "job.checkpoint_store must be null");
  }
  if (config.supervisor.max_restart_attempts < 1) {
    return Status::InvalidArgument("max_restart_attempts must be >= 1");
  }
  return config;
}

}  // namespace astream
