#include "core/job_config.h"

namespace astream {

namespace {

bool IsPowerOfTwo(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Status ValidateJobOptions(const core::AStreamJob::Options& options) {
  if (options.parallelism < 1) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  if (options.max_join_stages < 1 ||
      options.max_join_stages > core::kMaxJoinDepth) {
    return Status::InvalidArgument("max_join_stages out of range");
  }
  if (options.num_streams < 2 || options.num_streams > core::kMaxJoinDepth) {
    return Status::InvalidArgument("num_streams out of range (2..5)");
  }
  if (options.num_streams != 2 &&
      options.topology != core::AStreamJob::TopologyKind::kMultiway) {
    return Status::InvalidArgument(
        "num_streams > 2 requires the multiway topology");
  }
  if (options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.batch_linger_ms < 0) {
    return Status::InvalidArgument("batch_linger_ms must be >= 0");
  }
  if (options.channel_capacity < 1) {
    return Status::InvalidArgument("channel_capacity must be >= 1");
  }
  if (options.session.batch_size < 1) {
    return Status::InvalidArgument("session.batch_size must be >= 1");
  }
  if (options.session.max_timeout_ms < 0) {
    return Status::InvalidArgument("session.max_timeout_ms must be >= 0");
  }
  if (options.checkpoint_retention < 1) {
    return Status::InvalidArgument("checkpoint_retention must be >= 1");
  }
  if (options.first_checkpoint_id < 1) {
    return Status::InvalidArgument("first_checkpoint_id must be >= 1");
  }
  const core::SloOptions& slo = options.slo;
  if (slo.p99_event_latency_ms < 0) {
    return Status::InvalidArgument("slo.p99_event_latency_ms must be >= 0");
  }
  if (slo.max_predicted_cost < 0 || slo.max_total_cost < 0) {
    return Status::InvalidArgument("slo cost caps must be >= 0");
  }
  if (slo.whale_cost_fraction <= 0 || slo.whale_cost_fraction > 1) {
    return Status::InvalidArgument(
        "slo.whale_cost_fraction must be in (0, 1]");
  }
  if (slo.readmit_cost_fraction < 0 || slo.readmit_cost_fraction > 1) {
    return Status::InvalidArgument(
        "slo.readmit_cost_fraction must be in [0, 1]");
  }
  if (slo.whale_min_cost < 0) {
    return Status::InvalidArgument("slo.whale_min_cost must be >= 0");
  }
  if (slo.enable_desharing && !slo.enable_admission) {
    return Status::InvalidArgument(
        "slo.enable_desharing requires slo.enable_admission "
        "(de-sharing decisions read the metered cost model)");
  }
  if (slo.enable_admission && !options.enable_metrics) {
    return Status::InvalidArgument(
        "slo.enable_admission requires enable_metrics "
        "(admission refines its cost model from metered series)");
  }
  if (options.meter_costs && !options.enable_metrics) {
    return Status::InvalidArgument(
        "meter_costs requires enable_metrics (costs are attributed "
        "into per-query series)");
  }
  return Status::OK();
}

Result<JobConfig> JobConfig::Validated(JobConfig config) {
  ASTREAM_RETURN_IF_ERROR(ValidateJobOptions(config.job));
  if (config.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (config.slots < config.shards) {
    return Status::InvalidArgument(
        "slots must be >= shards (each shard owns at least one slot)");
  }
  if (config.shard_threads && !IsPowerOfTwo(config.ingress_capacity)) {
    return Status::InvalidArgument(
        "ingress_capacity must be a power of two");
  }
  if (!config.state_dir.empty() && !config.supervised) {
    return Status::InvalidArgument(
        "state_dir (durable shard checkpoints) requires supervised");
  }
  if (config.supervised &&
      config.job.topology == core::AStreamJob::TopologyKind::kMultiway) {
    return Status::InvalidArgument(
        "supervised shards replay a two-stream source log; "
        "multiway topologies are not supported supervised");
  }
  if (config.supervised && config.job.checkpoint_store != nullptr) {
    return Status::InvalidArgument(
        "supervised shards own their checkpoint stores; "
        "job.checkpoint_store must be null");
  }
  if (config.supervisor.max_restart_attempts < 1) {
    return Status::InvalidArgument("max_restart_attempts must be >= 1");
  }
  return config;
}

}  // namespace astream
