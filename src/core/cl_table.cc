#include "core/cl_table.h"

#include <algorithm>
#include <cassert>

#include "spe/state.h"

namespace astream::core {

void ClTable::AddSlice(int64_t index, QuerySet delta, size_t num_slots) {
  if (deltas_.empty()) {
    first_index_ = index;
  } else {
    assert(index == first_index_ + Size() && "slice indices must be dense");
  }
  SliceEntry e;
  e.delta = std::move(delta);
  e.num_slots = num_slots;
  deltas_.push_back(std::move(e));
}

const QuerySet& ClTable::Mask(int64_t i, int64_t j) {
  if (j > i) std::swap(i, j);
  assert(j >= first_index_ && i <= last_index() && "slice evicted/unknown");
  return ComputeMask(i, j);
}

const QuerySet& ClTable::ComputeMask(int64_t i, int64_t j) {
  // Eq. 1, memoized per slice row. CL[j][j] is all-ones over the slot
  // universe that existed when slice j was created; CL[i][j] =
  // CL[i-1][j] & delta[i].
  {
    std::optional<QuerySet>& cell = Cell(i, j);
    if (cell.has_value()) return *cell;
  }
  // Find the longest memoized prefix CL[k-1][j], then extend to i.
  int64_t k = i;
  while (k > j) {
    SliceEntry& prev = Entry(k - 1);
    const size_t d = static_cast<size_t>(k - 1 - j);
    if (d < prev.row.size() && prev.row[d].has_value()) break;
    --k;
  }
  QuerySet acc;
  if (k == j) {
    acc = QuerySet::AllSet(Entry(j).num_slots);
    std::optional<QuerySet>& diag = Cell(j, j);
    if (!diag.has_value()) {
      diag = acc;
      ++memo_entries_;
    }
  } else {
    acc = *Entry(k - 1).row[static_cast<size_t>(k - 1 - j)];
  }
  for (int64_t m = k == j ? j + 1 : k; m <= i; ++m) {
    SliceEntry& em = Entry(m);
    EnsureDelta(em, m);
    acc &= em.delta;
    std::optional<QuerySet>& cell = Cell(m, j);
    if (!cell.has_value()) {
      cell = acc;
      ++memo_entries_;
    }
  }
  return *Entry(i).row[static_cast<size_t>(i - j)];
}

void ClTable::EvictBelow(int64_t min_index) {
  // Whole memo rows die with their slice — one deque pop, no global scan.
  while (!deltas_.empty() && first_index_ < min_index) {
    for (const auto& cell : deltas_.front().row) {
      if (cell.has_value()) --memo_entries_;
    }
    deltas_.pop_front();
    ++first_index_;
  }
  // Surviving rows may still hold tail entries whose j was evicted; trim
  // them so the memo never references dropped slices.
  for (int64_t i = first_index_; i <= last_index(); ++i) {
    auto& row = Entry(i).row;
    const size_t keep = static_cast<size_t>(i - first_index_) + 1;
    if (row.size() <= keep) continue;
    for (size_t d = keep; d < row.size(); ++d) {
      if (row[d].has_value()) --memo_entries_;
    }
    row.resize(keep);
  }
}

QuerySet ClTable::DeltaOf(const SliceEntry& e, int64_t index) const {
  if (!e.spilled) return e.delta;
  auto reader = e.run->OpenReader();
  if (!reader.ok()) return e.delta;  // validated at write time
  int64_t key = 0;
  std::vector<uint8_t> payload;
  while ((*reader)->Next(&key, &payload)) {
    if (key != index) continue;
    spe::StateReader dec(std::move(payload));
    QuerySet delta = dec.ReadBitset();
    if (dec.Ok()) return delta;
    break;
  }
  return e.delta;
}

void ClTable::EnsureDelta(SliceEntry& e, int64_t index) {
  if (!e.spilled) return;
  e.delta = DeltaOf(e, index);
  e.spilled = false;
  e.run.reset();
}

size_t ClTable::SpillBelow(int64_t max_index, storage::SpillSpace* space) {
  if (space == nullptr || deltas_.empty()) return 0;
  const int64_t hi = std::min(max_index, last_index());
  std::vector<int64_t> victims;
  for (int64_t i = first_index_; i <= hi; ++i) {
    if (!Entry(i).spilled) victims.push_back(i);
  }
  if (victims.empty()) return 0;
  storage::RunWriter writer(space->NextRunPath("cl"), space->writer_options());
  for (int64_t i : victims) {
    spe::StateWriter enc;
    enc.WriteBitset(Entry(i).delta);
    if (!writer.Append(i, enc.buffer().data(), enc.buffer().size()).ok()) {
      writer.Abort();
      return 0;
    }
  }
  auto info = writer.Finish();
  if (!info.ok()) return 0;
  storage::SpilledRunPtr run = space->Adopt(std::move(info).value(), 0);
  size_t released = 0;
  for (int64_t i : victims) {
    SliceEntry& e = Entry(i);
    // Estimate: the delta words plus every memoized mask in this row.
    released += e.delta.capacity() / 8;
    for (auto& cell : e.row) {
      if (cell.has_value()) {
        released += cell->capacity() / 8;
        --memo_entries_;
      }
    }
    e.row.clear();
    e.row.shrink_to_fit();
    e.delta = QuerySet();
    e.spilled = true;
    e.run = run;
  }
  return released;
}

size_t ClTable::NumSpilledDeltas() const {
  size_t n = 0;
  for (const SliceEntry& e : deltas_) n += e.spilled ? 1 : 0;
  return n;
}

void ClTable::Serialize(spe::StateWriter* writer) const {
  writer->WriteI64(first_index_);
  writer->WriteU64(deltas_.size());
  for (size_t d = 0; d < deltas_.size(); ++d) {
    const SliceEntry& e = deltas_[d];
    writer->WriteBitset(DeltaOf(e, first_index_ + static_cast<int64_t>(d)));
    writer->WriteU64(e.num_slots);
  }
}

Status ClTable::Restore(spe::StateReader* reader) {
  deltas_.clear();
  memo_entries_ = 0;
  first_index_ = reader->ReadI64();
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    SliceEntry e;
    e.delta = reader->ReadBitset();
    e.num_slots = reader->ReadU64();
    deltas_.push_back(std::move(e));
  }
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad ClTable snapshot");
}

}  // namespace astream::core
