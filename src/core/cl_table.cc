#include "core/cl_table.h"

#include <cassert>

namespace astream::core {

void ClTable::AddSlice(int64_t index, QuerySet delta, size_t num_slots) {
  if (deltas_.empty()) {
    first_index_ = index;
  } else {
    assert(index == first_index_ + Size() && "slice indices must be dense");
  }
  deltas_.push_back(SliceEntry{std::move(delta), num_slots});
}

const QuerySet& ClTable::Mask(int64_t i, int64_t j) {
  if (j > i) std::swap(i, j);
  assert(j >= first_index_ && i <= last_index() && "slice evicted/unknown");
  return ComputeMask(i, j);
}

const QuerySet& ClTable::ComputeMask(int64_t i, int64_t j) {
  // Eq. 1, memoized. CL[j][j] is all-ones over the slot universe that
  // existed when slice j was created; CL[i][j] = CL[i-1][j] & delta[i].
  auto hit = memo_.find(MemoKey(i, j));
  if (hit != memo_.end()) return hit->second;
  if (i == j) {
    auto [it, inserted] = memo_.try_emplace(
        MemoKey(i, j),
        QuerySet::AllSet(deltas_[i - first_index_].num_slots));
    (void)inserted;
    return it->second;
  }
  // Find the longest memoized prefix CL[k-1][j], then extend to i.
  int64_t k = i;
  while (k > j && memo_.find(MemoKey(k - 1, j)) == memo_.end()) --k;
  QuerySet acc;
  if (k == j) {
    acc = QuerySet::AllSet(deltas_[j - first_index_].num_slots);
  } else {
    acc = memo_.at(MemoKey(k - 1, j));
    acc &= deltas_[k - first_index_].delta;
    memo_.emplace(MemoKey(k, j), acc);
  }
  for (int64_t m = k + 1; m <= i; ++m) {
    acc &= deltas_[m - first_index_].delta;
    memo_.emplace(MemoKey(m, j), acc);
  }
  return memo_.at(MemoKey(i, j));
}

void ClTable::EvictBelow(int64_t min_index) {
  while (!deltas_.empty() && first_index_ < min_index) {
    deltas_.pop_front();
    ++first_index_;
  }
  // Drop memo entries touching evicted slices.
  for (auto it = memo_.begin(); it != memo_.end();) {
    const int64_t j = static_cast<int32_t>(it->first & 0xffffffff);
    if (j < min_index) {
      it = memo_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClTable::Serialize(spe::StateWriter* writer) const {
  writer->WriteI64(first_index_);
  writer->WriteU64(deltas_.size());
  for (const SliceEntry& e : deltas_) {
    writer->WriteBitset(e.delta);
    writer->WriteU64(e.num_slots);
  }
}

Status ClTable::Restore(spe::StateReader* reader) {
  deltas_.clear();
  memo_.clear();
  first_index_ = reader->ReadI64();
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    SliceEntry e;
    e.delta = reader->ReadBitset();
    e.num_slots = reader->ReadU64();
    deltas_.push_back(std::move(e));
  }
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad ClTable snapshot");
}

}  // namespace astream::core
