#ifndef ASTREAM_CORE_SHARED_OPERATOR_H_
#define ASTREAM_CORE_SHARED_OPERATOR_H_

#include <functional>
#include <map>
#include <vector>

#include "core/changelog.h"
#include "core/slice_store.h"
#include "core/slicing.h"
#include "core/trigger.h"
#include "obs/metrics.h"
#include "spe/operator.h"
#include "storage/memory_governor.h"

namespace astream::core {

/// Payload of a kModeSwitch marker (Sec. 3.2.3): the shared session tells
/// downstream shared operators to change their slice data structure.
struct ModeSwitchPayload : public spe::MarkerPayload {
  StoreMode mode = StoreMode::kList;
};

/// Configuration shared by the windowed shared operators.
struct SharedOperatorConfig {
  /// Which active queries this operator hosts (contributes windows,
  /// triggers, and state). E.g. the first join stage of a complex topology
  /// hosts complex queries with join_depth >= 1; the shared aggregation of
  /// an aggregation topology hosts kAggregation queries.
  std::function<bool(const ActiveQuery&)> hosts;

  /// Initial physical layout of slice tuple stores.
  StoreMode initial_mode = StoreMode::kGrouped;

  /// If true, the layout heuristic of Sec. 3.1.4 runs on every changelog:
  /// switch to kList when the average group size of the current open
  /// slices drops below 2, back to kGrouped when grouping would pay again.
  bool adaptive_mode = true;

  /// Per-query series sink (late drops, slice reuse). nullptr or a
  /// disabled registry costs one branch per record.
  obs::MetricsRegistry* metrics = nullptr;

  /// Per-query cost metering (DESIGN.md §14): attribute ingested rows,
  /// trigger CPU time, and state bytes to the owning queries' series.
  /// Off (the default), the meters cost one predicted branch per batch.
  bool meter_costs = false;

  /// Out-of-core state (DESIGN.md §10). Both nullptr (the default) keeps
  /// every slice resident — the pre-storage behavior. When set, the
  /// operator registers as a spill client, reports its resident bytes
  /// after every (batch of) record(s), and sheds its coldest slices to
  /// `spill_space` when the governor asks.
  storage::MemoryGovernor* governor = nullptr;
  storage::SpillSpace* spill_space = nullptr;
  /// Run compaction (DESIGN.md §13); nullptr = runs are never folded.
  storage::Compactor* compactor = nullptr;
  /// Weigh per-slice trigger reads in spill-victim selection (see
  /// StorageOptions::access_aware_eviction).
  bool access_aware_eviction = false;

  /// Cross-window state sharing (DESIGN.md §12). When true (the default),
  /// the slicer routes composable (length, slide) specs through the
  /// factor-window rewrite, aggregations store group-shared partials, and
  /// trigger evaluation composes slices through the arrangement memo. When
  /// false, every query keeps per-slot partials over exact per-query edges
  /// — the per-query-store reference mode the equivalence suite compares
  /// against.
  bool share_arrangements = true;
};

/// Base class for SharedJoin and SharedAggregation: owns the active-query
/// table, the slice tracker + CL table, the trigger queue, the draining
/// bookkeeping for deleted queries, and slice eviction.
///
/// Deletion semantics: a window of query q emits iff its end is at or
/// before q's deletion time; later windows (including the one in flight at
/// deletion) are cancelled. Creation semantics: windows are anchored at
/// the creation time (Fig. 4d).
class SharedWindowedOperator : public spe::Operator {
 public:
  explicit SharedWindowedOperator(SharedOperatorConfig config)
      : config_(std::move(config)),
        metrics_on_(config_.metrics != nullptr && config_.metrics->enabled()),
        meter_on_(config_.meter_costs && config_.metrics != nullptr &&
                  config_.metrics->enabled()),
        series_cache_(config_.metrics) {
    tracker_.EnableFactorRewrite(config_.share_arrangements);
  }

  void OnMarker(const spe::ControlMarker& marker, spe::Collector* out) final;
  void OnWatermark(TimestampMs watermark, spe::Collector* out) final;

  const ActiveQueryTable& table() const { return table_; }
  SliceTracker& tracker() { return tracker_; }
  const SliceTracker& tracker() const { return tracker_; }

  /// Whether cross-window sharing (arrangement memo + factor rewriting +
  /// group-shared partials) is on for this operator.
  bool share_arrangements() const { return config_.share_arrangements; }

  /// Observability: slices currently alive / total created.
  size_t NumLiveSlices() const { return tracker_.NumSlices(); }

  /// Cost metering: apportions this operator's resident state bytes
  /// across its hosted time-windowed queries by window-span share (a
  /// query retaining a 10x longer window owns 10x of the shared arena)
  /// and adds the shares into `out`. No-op when nothing is resident.
  void AppendStateShares(std::map<QueryId, int64_t>* out) const;

 protected:
  struct DrainingQuery {
    ActiveQuery query;
    TimestampMs deleted_at = 0;
  };

  /// One query participating in a triggered window. `draining` queries were
  /// deleted after this window completed; their results must be emitted
  /// with an explicit output channel (the slot may already be reused).
  struct TriggeredQuery {
    const ActiveQuery* query = nullptr;
    bool draining = false;
  };

  /// Subclass hooks -------------------------------------------------------

  /// A hosted query was created (changelog applied, tracker updated).
  virtual void OnQueryCreated(const ActiveQuery& query) { (void)query; }
  /// A hosted query was deleted (already moved to draining).
  virtual void OnQueryDeleted(const DrainingQuery& draining) {
    (void)draining;
  }
  /// Evaluate all windows sharing the same [start, end) interval.
  /// `queries` is non-empty; every entry is hosted and time-windowed.
  virtual void TriggerWindows(TimestampMs start, TimestampMs end,
                              const std::vector<TriggeredQuery>& queries,
                              spe::Collector* out) = 0;
  /// Called after every changelog once the active set and hosted mask are
  /// final (subclasses recompute derived masks/caches here).
  virtual void OnActiveSetChanged() {}
  /// Slices were evicted; drop any per-slice state.
  virtual void OnSlicesEvicted(const std::vector<int64_t>& indices) = 0;
  /// The store layout changed (mode-switch marker or heuristic).
  virtual void OnModeSwitch(StoreMode mode) { (void)mode; }
  /// Watermark advanced past all due triggers (session windows etc.).
  virtual void OnWatermarkTail(TimestampMs watermark, spe::Collector* out) {
    (void)watermark;
    (void)out;
  }

  /// Helpers for subclasses ------------------------------------------------

  /// Mask of slots hosted by this operator (recomputed per changelog).
  const QuerySet& hosted_mask() const { return hosted_mask_; }

  /// Metrics helpers. `metrics_on()` is the one-branch hot-path guard;
  /// the per-slot vector is rebuilt on every changelog so slot lookups
  /// never hash. Draining queries (slot reused) fall back to the id cache.
  bool metrics_on() const { return metrics_on_; }
  /// One-branch guard for the per-record cost meters (off by default).
  bool meter_costs() const { return meter_on_; }
  obs::QuerySeries* SeriesForSlot(size_t slot) {
    return slot < slot_series_.size() ? slot_series_[slot] : nullptr;
  }
  obs::QuerySeries* SeriesForQuery(QueryId id) { return series_cache_.For(id); }
  StoreMode current_mode() const { return current_mode_; }
  TimestampMs max_seen_event_time() const { return max_seen_event_time_; }
  void NoteEventTime(TimestampMs t) {
    if (t > max_seen_event_time_) max_seen_event_time_ = t;
  }
  TimestampMs current_watermark() const { return current_watermark_; }

  /// Out-of-core wiring (nullptr when the job runs unbudgeted).
  storage::MemoryGovernor* governor() const { return config_.governor; }
  storage::SpillSpace* spill_space() const { return config_.spill_space; }
  storage::Compactor* compactor() const { return config_.compactor; }
  bool access_aware_eviction() const {
    return config_.access_aware_eviction;
  }

  /// Resident state bytes of the subclass (arena footprint) for the
  /// AppendStateShares apportionment.
  virtual int64_t ResidentStateBytes() const { return 0; }

  /// Serialization of the base state (call from subclass snapshots).
  void SerializeBase(spe::StateWriter* writer) const;
  Status RestoreBase(spe::StateReader* reader);

 private:
  void ApplyChangelog(const Changelog& log);
  void RebuildSlotSeries();
  void EvictExpired(TimestampMs watermark);
  /// Longest window span any live (active or draining) hosted query needs.
  TimestampMs MaxWindowSpan() const;
  void MaybeSwitchMode();

  SharedOperatorConfig config_;
  ActiveQueryTable table_;
  SliceTracker tracker_;
  TriggerQueue triggers_;
  std::map<QueryId, DrainingQuery> draining_;
  QuerySet hosted_mask_;
  StoreMode current_mode_ = StoreMode::kGrouped;
  TimestampMs max_seen_event_time_ = kMinTimestamp;
  TimestampMs current_watermark_ = kMinTimestamp;

  bool metrics_on_ = false;
  bool meter_on_ = false;
  obs::SeriesCache series_cache_;
  std::vector<obs::QuerySeries*> slot_series_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_SHARED_OPERATOR_H_
