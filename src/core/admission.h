#ifndef ASTREAM_CORE_ADMISSION_H_
#define ASTREAM_CORE_ADMISSION_H_

#include <cstddef>
#include <map>
#include <string>

#include "common/status.h"
#include "core/query.h"

namespace astream::core {

/// Per-job isolation / SLO knobs (DESIGN.md §14). Embedded in
/// AStreamJob::Options (and JobConfig); all enforcement is off by default
/// so existing jobs are untouched.
struct SloOptions {
  /// Gate Submit through the admission controller. Off: every submit is
  /// admitted unconditionally (the pre-isolation behavior).
  bool enable_admission = false;

  /// p99 event-time latency target (ms) for the fleet. While the live p99
  /// is at or above the target, new queries are queued instead of
  /// admitted; it is also the violation signal that marks a whale for
  /// de-sharing. 0 = no latency gate.
  int64_t p99_event_latency_ms = 0;
  /// Hard cap on concurrently admitted queries. 0 = unlimited.
  size_t max_active_queries = 0;
  /// A single query whose predicted cost exceeds this is rejected
  /// outright — queueing cannot help a query that can never fit. 0 = off.
  double max_predicted_cost = 0;
  /// Fleet-wide predicted-cost budget; a query that would push the total
  /// past it is queued until headroom returns. 0 = off.
  double max_total_cost = 0;
  /// Queue depth beyond which would-be-queued submits are rejected.
  size_t max_queued = 64;

  /// De-sharing (whale ejection). Requires enable_admission.
  bool enable_desharing = false;
  /// A query is a whale when its metered share of the fleet's cost
  /// reaches this fraction while the p99 target is violated.
  double whale_cost_fraction = 0.5;
  /// Minimum fleet-wide metered cost before de-sharing can trigger —
  /// keeps a cold job from ejecting its only busy query.
  int64_t whale_min_cost = 0;
  /// Re-admit an ejected whale into the shared plan once its metered
  /// cost share drops below readmit_cost_fraction.
  bool auto_readmit = false;
  double readmit_cost_fraction = 0.25;
};

/// What Submit decided under admission control.
enum class AdmissionDecision { kAdmitted, kQueued, kRejected };

const char* AdmissionDecisionName(AdmissionDecision d);

/// Cost model + admission policy (DESIGN.md §14). Pure bookkeeping — the
/// owning job (or shard router) holds the queue of deferred descriptors
/// and asks `Decide` / `HasHeadroom`; the controller only tracks predicted
/// cost of admitted queries and refines it from live metered shares.
///
/// Cost unit: "shape units". The static model scores a descriptor by its
/// sharing-unfriendly dimensions (window overlap length/slide, join
/// fan-out, pipeline depth); live metering re-apportions the fleet's total
/// predicted cost by each query's observed share of metered cost
/// (rows + cpu + state), so a query that turns out hotter than its shape
/// suggested occupies more of the budget.
class AdmissionController {
 public:
  explicit AdmissionController(SloOptions slo) : slo_(slo) {}

  const SloOptions& slo() const { return slo_; }
  bool enabled() const { return slo_.enable_admission; }

  /// Static shape score of a descriptor (>= 1).
  static double ShapeCost(const QueryDescriptor& desc);

  /// Predicted marginal cost: static shape, scaled by the fleet-wide
  /// calibration factor learned from metering (1.0 until calibrated).
  double PredictCost(const QueryDescriptor& desc) const;

  struct Decision {
    AdmissionDecision action = AdmissionDecision::kAdmitted;
    double predicted_cost = 0;
    std::string reason;  // set for kQueued / kRejected
  };
  /// Policy for one new descriptor. `num_queued` is the current queue
  /// depth, `p99_event_ms` the live fleet p99 (pass 0 when unknown).
  Decision Decide(const QueryDescriptor& desc, size_t num_queued,
                  double p99_event_ms) const;

  /// True when a queued descriptor could be admitted now.
  bool HasHeadroom(const QueryDescriptor& desc, double p99_event_ms) const;

  /// Bookkeeping of the admitted fleet.
  void OnAdmitted(QueryId id, const QueryDescriptor& desc);
  void OnCancelled(QueryId id);
  size_t num_admitted() const { return admitted_.size(); }
  double TotalPredicted() const { return total_predicted_; }

  /// Live refinement: `share` in [0, 1] is the query's fraction of the
  /// fleet's metered cost. Re-apportions the fleet total so hot queries
  /// grow and idle ones shrink (EWMA-blended, floor at half the static
  /// shape so a briefly idle whale does not evaporate from the model).
  void ObserveMeteredShare(QueryId id, double share);

 private:
  struct Admitted {
    double shape = 1;
    double predicted = 1;
  };

  SloOptions slo_;
  std::map<QueryId, Admitted> admitted_;
  double total_predicted_ = 0;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_ADMISSION_H_
