#ifndef ASTREAM_CORE_SLICING_H_
#define ASTREAM_CORE_SLICING_H_

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "core/cl_table.h"
#include "core/query.h"
#include "core/registry.h"
#include "core/window_math.h"

namespace astream::core {

/// Runtime window slicing (Sec. 3.1.3, Fig. 4e).
///
/// Event time is partitioned into slices whose boundaries are (a) the
/// window start/end edges of all active time-window queries and (b) the
/// event times of changelogs. Boundaries are materialized lazily: only up
/// to just past the largest timestamp any caller has asked about, always
/// using the query set active at materialization time. The runtime's
/// marker-alignment guarantee (every record processed before a changelog
/// marker has event time < marker.time) makes this sound: a cut can shrink
/// at most the still-empty tail slice.
///
/// The tracker also owns the ClTable: each slice's left-boundary delta mask
/// is registered on creation (the changelog-set for cut boundaries,
/// all-ones otherwise).
class SliceTracker {
 public:
  SliceTracker() = default;

  /// Current slot-universe size; used to size all-ones delta masks.
  void SetNumSlots(size_t num_slots) { num_slots_ = num_slots; }

  /// Factor-window rewriting (DESIGN.md §12): when enabled, AddQuery
  /// routes composable (length, slide) specs through the FactorRegistry so
  /// they share one GCD-derived edge lattice instead of registering exact
  /// per-query edge generators. Off by default (the bare tracker and the
  /// per-query-store reference path); operators enable it from their
  /// config before the first changelog.
  void EnableFactorRewrite(bool on) { factor_rewrite_ = on; }
  bool factor_rewrite_enabled() const { return factor_rewrite_; }

  /// Registers an active time-window query whose window edges contribute
  /// slice boundaries. `origin` is the query's creation time.
  void AddQuery(int slot, TimestampMs origin, spe::WindowSpec spec);

  /// Unregisters a query's edges (deletion). Draining windows should keep
  /// the query registered until their last trigger if their edges are
  /// still needed; in practice edges already materialized stay valid.
  void RemoveQuery(int slot);

  /// The slice containing event time t. Materializes boundaries as needed.
  /// t must be >= the first cut (tagged tuples always are).
  SliceInfo SliceFor(TimestampMs t);

  /// All slices fully inside [from, to), materializing up to `to`.
  /// `from`/`to` must be slice boundaries (window edges of some active or
  /// draining query).
  std::vector<SliceInfo> SlicesIn(TimestampMs from, TimestampMs to);

  /// Cuts a slice boundary at a changelog's event time and registers
  /// `delta` (the changelog-set) as the new slice's left-boundary mask.
  /// Must be called with strictly increasing times; `time` must be beyond
  /// every tuple passed to SliceFor so far (the alignment guarantee).
  void CutAt(TimestampMs time, const QuerySet& delta);

  /// Evicts slices with end <= horizon. Returns their indices so callers
  /// drop per-slice state.
  std::vector<int64_t> EvictBefore(TimestampMs horizon);

  ClTable& cl_table() { return cl_table_; }
  const FactorRegistry& factors() const { return factors_; }

  /// The materialized slice with the given index, if not yet evicted.
  /// Lets spill policies translate a store's slice index back to its
  /// window-end time (eviction order == coldness order).
  std::optional<SliceInfo> SliceByIndex(int64_t index) const {
    if (slices_.empty() || index < slices_.front().index ||
        index > slices_.back().index) {
      return std::nullopt;
    }
    return slices_[static_cast<size_t>(index - slices_.front().index)];
  }

  size_t NumSlices() const { return slices_.size(); }
  bool Initialized() const { return initialized_; }
  TimestampMs frontier() const { return frontier_; }

  /// Total slices ever created (monotone; observability).
  int64_t TotalSlicesCreated() const { return next_index_; }

  void Serialize(spe::StateWriter* writer) const;
  Status Restore(spe::StateReader* reader);

 private:
  struct TrackedQuery {
    TimestampMs origin = 0;
    spe::WindowSpec spec;
  };

  /// Extends materialized slices until frontier_ > t.
  void ExtendCovering(TimestampMs t);
  /// Earliest window edge of any tracked query strictly after t, or
  /// kMaxTimestamp if none.
  TimestampMs NextEdgeAfter(TimestampMs t) const;
  void AppendSlice(TimestampMs end, QuerySet delta);

  size_t num_slots_ = 0;
  bool factor_rewrite_ = false;
  bool initialized_ = false;
  TimestampMs frontier_ = kMinTimestamp;
  TimestampMs last_cut_ = kMinTimestamp;
  int64_t next_index_ = 0;
  std::deque<SliceInfo> slices_;
  /// Queries tracked by their exact edges (factor rewriting off, session
  /// specs, or specs the cost model rejected).
  std::map<int, TrackedQuery> queries_;
  /// Queries rewritten onto shared factor lattices.
  FactorRegistry factors_;
  /// Delta mask for the slice that will start at frontier_ (set by CutAt).
  std::optional<QuerySet> pending_delta_;
  ClTable cl_table_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_SLICING_H_
