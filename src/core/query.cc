#include "core/query.h"

namespace astream::core {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Predicate::ToString() const {
  return "col" + std::to_string(column) + " " + CmpOpName(op) + " " +
         std::to_string(constant);
}

bool EvalConjunction(const std::vector<Predicate>& predicates,
                     const spe::Row& row) {
  for (const Predicate& p : predicates) {
    if (!p.Eval(row)) return false;
  }
  return true;
}

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSelection:
      return "selection";
    case QueryKind::kAggregation:
      return "aggregation";
    case QueryKind::kJoin:
      return "join";
    case QueryKind::kComplex:
      return "complex";
    case QueryKind::kMultiJoin:
      return "multijoin";
  }
  return "?";
}

std::string QueryDescriptor::ToString() const {
  std::string s = QueryKindName(kind);
  if (HasWindow()) s += " " + window.ToString();
  if (HasAgg()) s += " " + agg.ToString();
  if (kind == QueryKind::kComplex) {
    s += " joins=" + std::to_string(join_depth);
  }
  s += " where_a={";
  for (size_t i = 0; i < select_a.size(); ++i) {
    if (i > 0) s += " AND ";
    s += select_a[i].ToString();
  }
  s += "}";
  if (HasJoin()) {
    s += " where_b={";
    for (size_t i = 0; i < select_b.size(); ++i) {
      if (i > 0) s += " AND ";
      s += select_b[i].ToString();
    }
    s += "}";
  }
  if (kind == QueryKind::kMultiJoin) {
    s += " inputs=[";
    for (size_t i = 0; i < join_inputs.size(); ++i) {
      if (i > 0) s += ", ";
      s += "s" + std::to_string(join_inputs[i].stream) + "{";
      for (size_t j = 0; j < join_inputs[i].select.size(); ++j) {
        if (j > 0) s += " AND ";
        s += join_inputs[i].select[j].ToString();
      }
      s += "}";
    }
    s += "]";
  }
  return s;
}

namespace {

void SerializePredicates(const std::vector<Predicate>& predicates,
                         spe::StateWriter* writer) {
  writer->WriteU64(predicates.size());
  for (const Predicate& p : predicates) {
    writer->WriteI64(p.column);
    writer->WriteI64(static_cast<int64_t>(p.op));
    writer->WriteI64(p.constant);
  }
}

std::vector<Predicate> DeserializePredicates(spe::StateReader* reader) {
  std::vector<Predicate> out;
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    Predicate p;
    p.column = static_cast<int>(reader->ReadI64());
    p.op = static_cast<CmpOp>(reader->ReadI64());
    p.constant = reader->ReadI64();
    out.push_back(p);
  }
  return out;
}

}  // namespace

void QueryDescriptor::Serialize(spe::StateWriter* writer) const {
  writer->WriteI64(static_cast<int64_t>(kind));
  SerializePredicates(select_a, writer);
  SerializePredicates(select_b, writer);
  writer->WriteI64(static_cast<int64_t>(window.type));
  writer->WriteI64(window.length);
  writer->WriteI64(window.slide);
  writer->WriteI64(window.gap);
  writer->WriteI64(static_cast<int64_t>(agg.kind));
  writer->WriteI64(agg.column);
  writer->WriteI64(join_depth);
  writer->WriteI64(align_origin);
  writer->WriteU64(join_inputs.size());
  for (const JoinInput& in : join_inputs) {
    writer->WriteI64(in.stream);
    writer->WriteU64(in.key.size());
    for (int k : in.key) writer->WriteI64(k);
    SerializePredicates(in.select, writer);
  }
}

QueryDescriptor QueryDescriptor::Deserialize(spe::StateReader* reader) {
  QueryDescriptor d;
  d.kind = static_cast<QueryKind>(reader->ReadI64());
  d.select_a = DeserializePredicates(reader);
  d.select_b = DeserializePredicates(reader);
  d.window.type = static_cast<spe::WindowType>(reader->ReadI64());
  d.window.length = reader->ReadI64();
  d.window.slide = reader->ReadI64();
  d.window.gap = reader->ReadI64();
  d.agg.kind = static_cast<spe::AggKind>(reader->ReadI64());
  d.agg.column = static_cast<int>(reader->ReadI64());
  d.join_depth = static_cast<int>(reader->ReadI64());
  d.align_origin = reader->ReadI64();
  const uint64_t inputs = reader->ReadU64();
  for (uint64_t i = 0; i < inputs && reader->Ok(); ++i) {
    JoinInput in;
    in.stream = static_cast<int>(reader->ReadI64());
    in.key.clear();
    const uint64_t arity = reader->ReadU64();
    for (uint64_t k = 0; k < arity && reader->Ok(); ++k) {
      in.key.push_back(static_cast<int>(reader->ReadI64()));
    }
    in.select = DeserializePredicates(reader);
    d.join_inputs.push_back(std::move(in));
  }
  return d;
}

}  // namespace astream::core
