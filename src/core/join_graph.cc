#include "core/join_graph.h"

#include <algorithm>

namespace astream::core {

std::vector<int> JoinCostModel::Order(std::vector<int> streams) const {
  std::sort(streams.begin(), streams.end());
  if (!WarmedUp()) return streams;  // static shape fallback
  std::stable_sort(streams.begin(), streams.end(), [&](int a, int b) {
    return rate_[a] < rate_[b];
  });
  return streams;
}

void JoinCostModel::Serialize(spe::StateWriter* writer) const {
  writer->WriteU64(pending_.size());
  for (size_t s = 0; s < pending_.size(); ++s) {
    writer->WriteI64(pending_[s]);
    // Rates are advisory; fixed-point keeps the snapshot byte-stable.
    writer->WriteI64(static_cast<int64_t>(rate_[s] * 1024.0));
  }
  writer->WriteI64(total_observed_);
}

Status JoinCostModel::Restore(spe::StateReader* reader) {
  const uint64_t n = reader->ReadU64();
  pending_.assign(n, 0);
  rate_.assign(n, 0.0);
  for (uint64_t s = 0; s < n && reader->Ok(); ++s) {
    pending_[s] = reader->ReadI64();
    rate_[s] = static_cast<double>(reader->ReadI64()) / 1024.0;
  }
  total_observed_ = reader->ReadI64();
  if (!reader->Ok()) return Status::Internal("bad join cost model snapshot");
  return Status::OK();
}

const std::vector<int>& SubJoinRegistry::AcquireFor(
    int slot, const std::vector<int>& cost_order) {
  // Find the longest materialized chain whose stream set is contained in
  // this query's. Iterating the ordered map and taking strict improvements
  // keeps ties deterministic (lexicographically smallest wins).
  const std::vector<int>* best = nullptr;
  for (const auto& [prefix, refs] : nodes_) {
    (void)refs;
    if (best != nullptr && prefix.size() <= best->size()) continue;
    if (prefix.size() > cost_order.size()) continue;
    const bool subset = std::all_of(
        prefix.begin(), prefix.end(), [&](int s) {
          return std::find(cost_order.begin(), cost_order.end(), s) !=
                 cost_order.end();
        });
    if (subset) best = &prefix;
  }

  std::vector<int> chain;
  if (best != nullptr) {
    chain = *best;
    ++stats_.attached;
  } else {
    ++stats_.built;
  }
  for (int s : cost_order) {
    if (std::find(chain.begin(), chain.end(), s) == chain.end()) {
      chain.push_back(s);
    }
  }

  for (size_t len = 2; len <= chain.size(); ++len) {
    ++nodes_[std::vector<int>(chain.begin(), chain.begin() + len)];
  }
  return by_slot_[slot] = std::move(chain);
}

void SubJoinRegistry::Release(int slot) {
  auto it = by_slot_.find(slot);
  if (it == by_slot_.end()) return;
  const std::vector<int>& chain = it->second;
  for (size_t len = 2; len <= chain.size(); ++len) {
    std::vector<int> prefix(chain.begin(), chain.begin() + len);
    auto node = nodes_.find(prefix);
    if (node != nodes_.end() && --node->second <= 0) nodes_.erase(node);
  }
  by_slot_.erase(it);
}

void SubJoinRegistry::Serialize(spe::StateWriter* writer) const {
  writer->WriteU64(by_slot_.size());
  for (const auto& [slot, chain] : by_slot_) {
    writer->WriteI64(slot);
    writer->WriteU64(chain.size());
    for (int s : chain) writer->WriteI64(s);
  }
  writer->WriteI64(stats_.built);
  writer->WriteI64(stats_.attached);
}

Status SubJoinRegistry::Restore(spe::StateReader* reader) {
  nodes_.clear();
  by_slot_.clear();
  const uint64_t slots = reader->ReadU64();
  for (uint64_t i = 0; i < slots && reader->Ok(); ++i) {
    const int slot = static_cast<int>(reader->ReadI64());
    std::vector<int> chain;
    const uint64_t n = reader->ReadU64();
    for (uint64_t k = 0; k < n && reader->Ok(); ++k) {
      chain.push_back(static_cast<int>(reader->ReadI64()));
    }
    for (size_t len = 2; len <= chain.size(); ++len) {
      ++nodes_[std::vector<int>(chain.begin(), chain.begin() + len)];
    }
    by_slot_[slot] = std::move(chain);
  }
  stats_.built = reader->ReadI64();
  stats_.attached = reader->ReadI64();
  if (!reader->Ok()) return Status::Internal("bad sub-join registry snapshot");
  return Status::OK();
}

}  // namespace astream::core
