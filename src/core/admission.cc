#include "core/admission.h"

#include <algorithm>

namespace astream::core {

const char* AdmissionDecisionName(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmitted:
      return "admitted";
    case AdmissionDecision::kQueued:
      return "queued";
    case AdmissionDecision::kRejected:
      return "rejected";
  }
  return "?";
}

namespace {

/// Windows that overlap (slide < length) re-bill every tuple length/slide
/// times; that ratio is the dominant static cost driver.
double WindowOverlap(const spe::WindowSpec& window) {
  if (window.length <= 0) return 1;
  if (window.slide <= 0) return 1;
  return std::max<double>(
      1, static_cast<double>(window.length) / static_cast<double>(window.slide));
}

}  // namespace

double AdmissionController::ShapeCost(const QueryDescriptor& desc) {
  switch (desc.kind) {
    case QueryKind::kSelection:
      return 1;
    case QueryKind::kAggregation:
      return 1 + WindowOverlap(desc.window);
    case QueryKind::kJoin:
      // Joins pay twice: per-window pair computation grows with the
      // retained span on both inputs.
      return 2 + 2 * WindowOverlap(desc.window);
    case QueryKind::kComplex:
      return desc.join_depth * (2 + 2 * WindowOverlap(desc.window)) + 1 +
             WindowOverlap(desc.window);
    case QueryKind::kMultiJoin: {
      // N-ary fan-out: each probe step of the chain is one binary join's
      // worth of pair computation, so an n-leg query costs n-1 join terms
      // (degenerating to the kJoin shape at n = 2).
      const double legs =
          std::max<double>(2, static_cast<double>(desc.join_inputs.size()));
      return (legs - 1) * (2 + 2 * WindowOverlap(desc.window));
    }
  }
  return 1;
}

double AdmissionController::PredictCost(const QueryDescriptor& desc) const {
  const double shape = ShapeCost(desc);
  double total_shape = 0;
  for (const auto& [id, a] : admitted_) total_shape += a.shape;
  // Fleet calibration: how much hotter the metered fleet runs than its
  // static shapes suggested. Only ever inflates — a conservatively cheap
  // fleet must not shrink a new query's prediction below its shape.
  const double calibration =
      total_shape > 0 ? std::max(1.0, total_predicted_ / total_shape) : 1.0;
  return shape * calibration;
}

AdmissionController::Decision AdmissionController::Decide(
    const QueryDescriptor& desc, size_t num_queued,
    double p99_event_ms) const {
  Decision d;
  d.predicted_cost = PredictCost(desc);
  if (!enabled()) return d;
  if (slo_.max_predicted_cost > 0 &&
      d.predicted_cost > slo_.max_predicted_cost) {
    d.action = AdmissionDecision::kRejected;
    d.reason = "predicted cost " + std::to_string(d.predicted_cost) +
               " exceeds per-query cap " +
               std::to_string(slo_.max_predicted_cost);
    return d;
  }
  std::string queue_reason;
  if (slo_.max_active_queries > 0 &&
      admitted_.size() >= slo_.max_active_queries) {
    queue_reason = "fleet at max_active_queries";
  } else if (slo_.max_total_cost > 0 &&
             total_predicted_ + d.predicted_cost > slo_.max_total_cost) {
    queue_reason = "fleet predicted cost would exceed budget";
  } else if (slo_.p99_event_latency_ms > 0 &&
             p99_event_ms >= static_cast<double>(slo_.p99_event_latency_ms)) {
    queue_reason = "fleet p99 at or above SLO target";
  }
  if (queue_reason.empty()) return d;
  if (num_queued >= slo_.max_queued) {
    d.action = AdmissionDecision::kRejected;
    d.reason = queue_reason + " and admission queue is full";
    return d;
  }
  d.action = AdmissionDecision::kQueued;
  d.reason = std::move(queue_reason);
  return d;
}

bool AdmissionController::HasHeadroom(const QueryDescriptor& desc,
                                      double p99_event_ms) const {
  if (!enabled()) return true;
  const double cost = PredictCost(desc);
  if (slo_.max_predicted_cost > 0 && cost > slo_.max_predicted_cost) {
    return false;
  }
  if (slo_.max_active_queries > 0 &&
      admitted_.size() >= slo_.max_active_queries) {
    return false;
  }
  if (slo_.max_total_cost > 0 &&
      total_predicted_ + cost > slo_.max_total_cost) {
    return false;
  }
  if (slo_.p99_event_latency_ms > 0 &&
      p99_event_ms >= static_cast<double>(slo_.p99_event_latency_ms)) {
    return false;
  }
  return true;
}

void AdmissionController::OnAdmitted(QueryId id, const QueryDescriptor& desc) {
  Admitted a;
  a.shape = ShapeCost(desc);
  a.predicted = PredictCost(desc);
  total_predicted_ += a.predicted;
  admitted_[id] = a;
}

void AdmissionController::OnCancelled(QueryId id) {
  auto it = admitted_.find(id);
  if (it == admitted_.end()) return;
  total_predicted_ -= it->second.predicted;
  if (total_predicted_ < 0) total_predicted_ = 0;
  admitted_.erase(it);
}

void AdmissionController::ObserveMeteredShare(QueryId id, double share) {
  auto it = admitted_.find(id);
  if (it == admitted_.end()) return;
  share = std::clamp(share, 0.0, 1.0);
  Admitted& a = it->second;
  // Re-apportion the fleet total by observed share, EWMA-blended, with a
  // floor at half the static shape so an idle query keeps a footprint.
  const double target = std::max(a.shape * 0.5, share * total_predicted_);
  const double updated = 0.5 * a.predicted + 0.5 * target;
  total_predicted_ += updated - a.predicted;
  a.predicted = updated;
  if (total_predicted_ < 0) total_predicted_ = 0;
}

}  // namespace astream::core
