#include "core/arrangement.h"

namespace astream::core {

TupleStore& TupleArrangement::StoreAt(int64_t version, StoreMode mode) {
  auto it = stores_.find(version);
  if (it == stores_.end()) {
    it = stores_.emplace(version, TupleStore(mode)).first;
    it->second.BindSpill(spill_);
    it->second.BindCompactor(compactor_);
  }
  return it->second;
}

const TupleStore* TupleArrangement::AtVersion(int64_t version) const {
  auto it = stores_.find(version);
  return it == stores_.end() ? nullptr : &it->second;
}

void TupleArrangement::ConvertAll(StoreMode mode) {
  for (auto& [version, store] : stores_) store.ConvertTo(mode);
}

void TupleArrangement::EvictThrough(int64_t max_version) {
  auto it = stores_.begin();
  while (it != stores_.end() && it->first <= max_version) {
    it = stores_.erase(it);
  }
  auto rit = reads_.begin();
  while (rit != reads_.end() && rit->first <= max_version) {
    rit = reads_.erase(rit);
  }
}

int64_t TupleArrangement::ColdestResident() const {
  for (const auto& [version, store] : stores_) {
    if (store.NumResidentTuples() > 0) return version;
  }
  return kNoVersion;
}

int64_t TupleArrangement::PickVictim(int64_t* reads) const {
  *reads = 0;
  if (!access_aware_) return ColdestResident();
  int64_t best = kNoVersion;
  int64_t best_reads = 0;
  for (const auto& [version, store] : stores_) {
    if (store.NumResidentTuples() == 0) continue;
    auto rit = reads_.find(version);
    const int64_t r = rit == reads_.end() ? 0 : rit->second;
    // Fewest reads wins; ties to the oldest (the map iterates ascending,
    // so the first minimum seen is the oldest).
    if (best == kNoVersion || r < best_reads) {
      best = version;
      best_reads = r;
    }
  }
  *reads = best_reads;
  return best;
}

size_t TupleArrangement::SpillAt(int64_t version) {
  auto it = stores_.find(version);
  return it == stores_.end() ? 0 : it->second.SpillToDisk();
}

void TupleArrangement::AddBytes(int64_t* arena_bytes, size_t* resident_bytes,
                                int64_t* coldest_resident) const {
  for (const auto& [version, store] : stores_) {
    *arena_bytes += static_cast<int64_t>(store.ArenaBytes());
    *resident_bytes += store.ResidentBytes();
    if (store.NumResidentTuples() > 0 && version < *coldest_resident) {
      *coldest_resident = version;
    }
  }
}

void TupleArrangement::Serialize(spe::StateWriter* writer) const {
  writer->WriteU64(stores_.size());
  for (const auto& [version, store] : stores_) {
    writer->WriteI64(version);
    store.Serialize(writer);
  }
}

Status TupleArrangement::Restore(spe::StateReader* reader) {
  stores_.clear();
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    const int64_t version = reader->ReadI64();
    auto it = stores_.emplace(version, TupleStore::Deserialize(reader));
    it.first->second.BindSpill(spill_);
    it.first->second.BindCompactor(compactor_);
  }
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad TupleArrangement snapshot");
}

const std::vector<JoinedTuple>* JoinMemo::Find(int64_t a, int64_t b) {
  auto it = memo_.find(std::make_pair(a, b));
  if (it == memo_.end()) return nullptr;
  ++hits_;
  return &it->second;
}

std::vector<JoinedTuple>& JoinMemo::Emplace(int64_t a, int64_t b) {
  ++misses_;
  return memo_[std::make_pair(a, b)];
}

void JoinMemo::EvictThrough(int64_t max_version) {
  auto it = memo_.begin();
  while (it != memo_.end()) {
    if (it->first.first <= max_version || it->first.second <= max_version) {
      it = memo_.erase(it);
    } else {
      ++it;
    }
  }
}

AggStore& AggArrangement::StoreAt(int64_t version) {
  auto it = stores_.find(version);
  if (it == stores_.end()) {
    it = stores_.emplace(version, AggStore()).first;
    it->second.BindSpill(spill_);
    it->second.BindCompactor(compactor_);
  }
  return it->second;
}

const AggStore* AggArrangement::AtVersion(int64_t version) const {
  auto it = stores_.find(version);
  return it == stores_.end() ? nullptr : &it->second;
}

namespace {

/// Folds (tags, acc) into `groups` with the one-group-per-tag-set rule.
void FoldInto(std::vector<AggStore::Group>* groups, QuerySet tags,
              const spe::Accumulator& acc) {
  for (AggStore::Group& g : *groups) {
    if (g.tags == tags) {
      g.acc.Merge(acc);
      return;
    }
  }
  groups->push_back(AggStore::Group{std::move(tags), acc});
}

/// Rough heap footprint of a composed view (memo accounting only).
size_t EstimateBytes(const AggArrangement::Composed& c) {
  size_t bytes = 0;
  for (const auto& [key, groups] : c) {
    bytes += 64;  // map node
    for (const AggStore::Group& g : groups) {
      bytes += sizeof(AggStore::Group) + g.tags.NumWords() * 8;
    }
  }
  return bytes;
}

/// Merges `src` (masked to its own span end) into `dst` under `bridge`
/// (the CL mask from dst's span end back to src's). Groups whose tags die
/// under the bridge are dropped — their queries must not see data from
/// before their slot was reassigned.
void MergeMasked(AggArrangement::Composed* dst,
                 const AggArrangement::Composed& src,
                 const QuerySet& bridge) {
  for (const auto& [key, groups] : src) {
    std::vector<AggStore::Group>* out = nullptr;
    for (const AggStore::Group& g : groups) {
      QuerySet tags = g.tags & bridge;
      if (tags.None()) continue;
      if (out == nullptr) out = &(*dst)[key];
      FoldInto(out, std::move(tags), g.acc);
    }
  }
}

/// Merge without a bridge (the block already ends at the span end).
void MergeUnmasked(AggArrangement::Composed* dst,
                   const AggArrangement::Composed& src) {
  for (const auto& [key, groups] : src) {
    auto& out = (*dst)[key];
    for (const AggStore::Group& g : groups) FoldInto(&out, g.tags, g.acc);
  }
}

}  // namespace

std::shared_ptr<const AggArrangement::Composed> AggArrangement::Block(
    int level, int64_t base, ClTable* cl, bool memoize) {
  const bool cache = memoize && level > 0;
  if (cache) {
    auto it = memo_.find(BlockKey{level, base});
    if (it != memo_.end()) {
      ++memo_hits_;
      return it->second;
    }
    ++memo_misses_;
  }
  auto out = std::make_shared<Composed>();
  if (level == 0) {
    auto it = stores_.find(base);
    if (it != stores_.end()) {
      it->second.ForEachGroupsMerged(
          [&](spe::Value key, const Group* groups, size_t n) {
            (*out)[key].assign(groups, groups + n);
          });
    }
  } else {
    const int64_t half = int64_t{1} << (level - 1);
    auto left = Block(level - 1, base, cl, memoize);
    auto right = Block(level - 1, base + half, cl, memoize);
    // Right child already masked to this block's end; bridge the left
    // child across. Copy the mask: the reference dies at the next ClTable
    // call.
    const QuerySet bridge = cl->Mask(base + 2 * half - 1, base + half - 1);
    *out = *right;
    MergeMasked(out.get(), *left, bridge);
  }
  if (cache) {
    memo_bytes_ += EstimateBytes(*out);
    memo_.emplace(BlockKey{level, base}, out);
  }
  return out;
}

AggArrangement::Composed AggArrangement::Compose(
    const std::vector<SliceInfo>& slices, ClTable* cl, bool memoize) {
  Composed out;
  if (slices.empty()) return out;
  const int64_t last = slices.back().index;
  int64_t i = slices.front().index;
  while (i <= last) {
    // Largest aligned power-of-two block starting at i that fits in the
    // span (canonical greedy decomposition: identical triggers always
    // produce identical blocks, maximizing memo reuse).
    int level = 0;
    while (level < kMaxLevel &&
           i % (int64_t{1} << (level + 1)) == 0 &&
           i + (int64_t{1} << (level + 1)) - 1 <= last) {
      ++level;
    }
    const int64_t block_end = i + (int64_t{1} << level) - 1;
    auto block = Block(level, i, cl, memoize);
    if (block_end == last) {
      if (out.empty()) {
        out = *block;  // common case: the span is one aligned block
      } else {
        MergeUnmasked(&out, *block);
      }
    } else {
      const QuerySet bridge = cl->Mask(last, block_end);
      MergeMasked(&out, *block, bridge);
    }
    i = block_end + 1;
  }
  return out;
}

void AggArrangement::EvictThrough(int64_t max_version) {
  auto it = stores_.begin();
  while (it != stores_.end() && it->first <= max_version) {
    it = stores_.erase(it);
  }
  auto rit = reads_.begin();
  while (rit != reads_.end() && rit->first <= max_version) {
    rit = reads_.erase(rit);
  }
  // Eviction is prefix-only, so any block overlapping an evicted slice
  // starts at or below max_version. Keyed (level, base), so matches are
  // not contiguous — scan the whole memo.
  auto mit = memo_.begin();
  while (mit != memo_.end()) {
    if (mit->first.second <= max_version) {
      memo_bytes_ -= std::min(memo_bytes_, EstimateBytes(*mit->second));
      mit = memo_.erase(mit);
    } else {
      ++mit;
    }
  }
}

size_t AggArrangement::ReleaseMemo() {
  const size_t released = memo_bytes_;
  memo_.clear();
  memo_bytes_ = 0;
  return released;
}

int64_t AggArrangement::ColdestResident() const {
  for (const auto& [version, store] : stores_) {
    if (store.NumKeys() > 0) return version;
  }
  return kNoVersion;
}

int64_t AggArrangement::PickVictim(int64_t* reads) const {
  *reads = 0;
  if (!access_aware_) return ColdestResident();
  int64_t best = kNoVersion;
  int64_t best_reads = 0;
  for (const auto& [version, store] : stores_) {
    if (store.NumKeys() == 0) continue;
    auto rit = reads_.find(version);
    const int64_t r = rit == reads_.end() ? 0 : rit->second;
    if (best == kNoVersion || r < best_reads) {
      best = version;
      best_reads = r;
    }
  }
  *reads = best_reads;
  return best;
}

size_t AggArrangement::SpillAt(int64_t version) {
  auto it = stores_.find(version);
  return it == stores_.end() ? 0 : it->second.SpillToDisk();
}

void AggArrangement::AddBytes(int64_t* arena_bytes, size_t* resident_bytes,
                              int64_t* coldest_resident) const {
  for (const auto& [version, store] : stores_) {
    *arena_bytes += static_cast<int64_t>(store.ArenaBytes());
    *resident_bytes += store.ResidentBytes();
    if (store.NumKeys() > 0 && version < *coldest_resident) {
      *coldest_resident = version;
    }
  }
  *resident_bytes += memo_bytes_;
}

void AggArrangement::Serialize(spe::StateWriter* writer) const {
  writer->WriteU64(stores_.size());
  for (const auto& [version, store] : stores_) {
    writer->WriteI64(version);
    store.Serialize(writer);
  }
}

Status AggArrangement::Restore(spe::StateReader* reader) {
  stores_.clear();
  ReleaseMemo();
  const uint64_t n = reader->ReadU64();
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    const int64_t version = reader->ReadI64();
    auto it = stores_.emplace(version, AggStore::Deserialize(reader));
    it.first->second.BindSpill(spill_);
    it.first->second.BindCompactor(compactor_);
  }
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad AggArrangement snapshot");
}

}  // namespace astream::core
