#include "core/shared_join.h"

#include <limits>

namespace astream::core {

SharedJoin::SharedJoin(SharedOperatorConfig config)
    : SharedWindowedOperator(std::move(config)) {
  if (governor() != nullptr) governor()->Register(this);
}

SharedJoin::~SharedJoin() {
  if (governor() != nullptr) governor()->Unregister(this);
}

TupleStore& SharedJoin::StoreFor(int side, int64_t slice_index) {
  auto it = stores_[side].find(slice_index);
  if (it == stores_[side].end()) {
    it = stores_[side]
             .emplace(slice_index, TupleStore(current_mode()))
             .first;
    it->second.BindSpill(spill_space());
  }
  return it->second;
}

void SharedJoin::RefreshArenaBytes() {
  int64_t bytes = 0;
  size_t resident = 0;
  int64_t coldest_index = std::numeric_limits<int64_t>::max();
  for (const auto& side_stores : stores_) {
    for (const auto& [index, store] : side_stores) {
      bytes += static_cast<int64_t>(store.ArenaBytes());
      resident += store.ResidentBytes();
      if (store.NumResidentTuples() > 0 && index < coldest_index) {
        coldest_index = index;
      }
    }
  }
  state_arena_bytes_ = bytes;
  if (governor() == nullptr) return;
  int64_t coldest_end = std::numeric_limits<int64_t>::max();
  if (coldest_index != std::numeric_limits<int64_t>::max()) {
    auto slice = tracker().SliceByIndex(coldest_index);
    coldest_end = slice.has_value() ? slice->end : coldest_index;
  }
  governor()->Update(this, resident, coldest_end);
}

void SharedJoin::EnforceBudget() {
  if (governor() != nullptr) governor()->Enforce(this);
}

size_t SharedJoin::SpillOnce() {
  // Victim = the coldest slice still holding resident tuples; both sides
  // spill at that index (their windows expire together), and the CL deltas
  // at or below it go with them. The pair memo stays: it holds computed
  // results that every later window over the pair reuses.
  int64_t victim = std::numeric_limits<int64_t>::max();
  for (const auto& side_stores : stores_) {
    for (const auto& [index, store] : side_stores) {
      if (store.NumResidentTuples() > 0 && index < victim) victim = index;
    }
  }
  if (victim == std::numeric_limits<int64_t>::max()) return 0;
  size_t released = 0;
  for (auto& side_stores : stores_) {
    auto it = side_stores.find(victim);
    if (it != side_stores.end()) released += it->second.SpillToDisk();
  }
  released += tracker().cl_table().SpillBelow(victim, spill_space());
  RefreshArenaBytes();
  return released;
}

void SharedJoin::ProcessRecord(int port, spe::Record record,
                               spe::Collector* out) {
  (void)out;
  NoteEventTime(record.event_time);
  if (record.event_time < current_watermark()) {
    ++records_late_;  // cannot be assigned consistently; dropped
    if (metrics_on()) {
      (record.tags & hosted_mask()).ForEachSetBit([&](size_t slot) {
        if (obs::QuerySeries* s = SeriesForSlot(slot)) s->late_drops.Add();
      });
    }
    return;
  }
  QuerySet tags = record.tags & hosted_mask();
  ++bitset_ops_;
  if (tags.None()) return;
  const SliceInfo slice = tracker().SliceFor(record.event_time);
  StoreFor(port, slice.index).Insert(record.row, tags);
  RefreshArenaBytes();
  EnforceBudget();
}

void SharedJoin::ProcessBatch(int port, spe::RecordBatch& records,
                              spe::Collector* out) {
  (void)out;
  // One batch arrives from one (port, sender), so a single store cache
  // suffices; it is revalidated by [start, end) slice containment.
  // Consecutive tuples overwhelmingly share a slice (sources are roughly
  // time-ordered). Safe within a batch: slices only change on markers,
  // which are batch boundaries, and map nodes are pointer-stable.
  SliceInfo cached_slice;
  TupleStore* cached_store = nullptr;
  int64_t ops = 0;
  for (spe::Record& record : records) {
    NoteEventTime(record.event_time);
    if (record.event_time < current_watermark()) {
      ++records_late_;  // cannot be assigned consistently; dropped
      if (metrics_on()) {
        (record.tags & hosted_mask()).ForEachSetBit([&](size_t slot) {
          if (obs::QuerySeries* s = SeriesForSlot(slot)) {
            s->late_drops.Add();
          }
        });
      }
      continue;
    }
    scratch_tags_ = record.tags;
    scratch_tags_ &= hosted_mask();
    ++ops;
    if (scratch_tags_.None()) continue;
    if (cached_store == nullptr ||
        record.event_time < cached_slice.start ||
        record.event_time >= cached_slice.end) {
      cached_slice = tracker().SliceFor(record.event_time);
      cached_store = &StoreFor(port, cached_slice.index);
    }
    cached_store->Insert(record.row, scratch_tags_);
  }
  bitset_ops_ += ops;
  RefreshArenaBytes();
  EnforceBudget();
}

const std::vector<SharedJoin::JoinedTuple>& SharedJoin::MemoFor(
    int64_t a, int64_t b, bool* computed) {
  const auto key = std::make_pair(a, b);
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++pairs_reused_;
    *computed = false;
    return it->second;
  }
  ++pairs_computed_;
  *computed = true;
  auto& results = memo_[key];
  auto sa = stores_[0].find(a);
  auto sb = stores_[1].find(b);
  if (sa != stores_[0].end() && sb != stores_[1].end()) {
    const QuerySet& mask = tracker().cl_table().Mask(a, b);
    bitset_ops_ += TupleStore::Join(
        sa->second, sb->second, mask,
        [&](const spe::Row& left, const spe::Row& right, QuerySet tags) {
          JoinedTuple t;
          t.row = spe::Row::Concat(left, right);
          t.tags = std::move(tags);
          results.push_back(std::move(t));
        });
  }
  return results;
}

void SharedJoin::TriggerWindows(TimestampMs start, TimestampMs end,
                                const std::vector<TriggeredQuery>& queries,
                                spe::Collector* out) {
  QuerySet active_bits;
  std::vector<std::pair<int, QueryId>> draining;  // (slot, id)
  for (const TriggeredQuery& tq : queries) {
    if (tq.draining) {
      draining.emplace_back(tq.query->slot, tq.query->id);
    } else {
      active_bits.Set(tq.query->slot);
    }
  }

  const std::vector<SliceInfo> slices = tracker().SlicesIn(start, end);
  const TimestampMs result_time = end - 1;
  for (const SliceInfo& a : slices) {
    for (const SliceInfo& b : slices) {
      bool computed = false;
      const std::vector<JoinedTuple>& tuples =
          MemoFor(a.index, b.index, &computed);
      if (metrics_on()) {
        // The first toucher pays for the pair's computation; every other
        // query (in this trigger and later ones) reuses the memo.
        bool charge_compute = computed;
        for (const TriggeredQuery& tq : queries) {
          obs::QuerySeries* s = SeriesForQuery(tq.query->id);
          if (s == nullptr) continue;
          (charge_compute ? s->slices_computed : s->slices_reused).Add();
          charge_compute = false;
        }
      }
      for (const JoinedTuple& t : tuples) {
        QuerySet shared_tags = t.tags & active_bits;
        ++bitset_ops_;
        if (shared_tags.Any()) {
          out->EmitRecord(result_time, t.row, std::move(shared_tags));
        }
        for (const auto& [slot, id] : draining) {
          if (t.tags.Test(slot)) {
            spe::StreamElement el;
            el.kind = spe::ElementKind::kRecord;
            el.record.event_time = result_time;
            el.record.row = t.row;
            el.record.tags = QuerySet::Single(slot);
            el.record.channel = id;
            out->Emit(std::move(el));
          }
        }
      }
    }
  }
}

void SharedJoin::OnSlicesEvicted(const std::vector<int64_t>& indices) {
  if (indices.empty()) return;
  const int64_t max_evicted = indices.back();
  for (int side = 0; side < 2; ++side) {
    auto& side_stores = stores_[side];
    auto it = side_stores.begin();
    while (it != side_stores.end() && it->first <= max_evicted) {
      it = side_stores.erase(it);
    }
  }
  auto it = memo_.begin();
  while (it != memo_.end()) {
    if (it->first.first <= max_evicted || it->first.second <= max_evicted) {
      it = memo_.erase(it);
    } else {
      ++it;
    }
  }
  RefreshArenaBytes();
}

void SharedJoin::OnModeSwitch(StoreMode mode) {
  // Sec. 3.2.3: convert the physical layout of all live slices.
  for (auto& side_stores : stores_) {
    for (auto& [index, store] : side_stores) store.ConvertTo(mode);
  }
}

Status SharedJoin::SnapshotState(spe::StateWriter* writer) {
  SerializeBase(writer);
  for (const auto& side_stores : stores_) {
    writer->WriteU64(side_stores.size());
    for (const auto& [index, store] : side_stores) {
      writer->WriteI64(index);
      store.Serialize(writer);
    }
  }
  // The memo is a cache: recomputed on demand after restore.
  writer->WriteI64(pairs_computed_);
  writer->WriteI64(records_late_);
  return Status::OK();
}

Status SharedJoin::RestoreState(spe::StateReader* reader) {
  ASTREAM_RETURN_IF_ERROR(RestoreBase(reader));
  memo_.clear();
  for (auto& side_stores : stores_) {
    side_stores.clear();
    const uint64_t n = reader->ReadU64();
    for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
      const int64_t index = reader->ReadI64();
      auto it = side_stores.emplace(index, TupleStore::Deserialize(reader));
      it.first->second.BindSpill(spill_space());
    }
  }
  pairs_computed_ = reader->ReadI64();
  records_late_ = reader->ReadI64();
  if (!reader->Ok()) return Status::Internal("bad shared-join snapshot");
  // Restored state is fully resident; shed back down to budget before
  // replay resumes.
  RefreshArenaBytes();
  EnforceBudget();
  return Status::OK();
}

}  // namespace astream::core
