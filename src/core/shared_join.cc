#include "core/shared_join.h"

#include <limits>
#include <tuple>

namespace astream::core {

SharedJoin::SharedJoin(SharedOperatorConfig config)
    : SharedWindowedOperator(std::move(config)) {
  for (TupleArrangement& side : sides_) {
    side.BindSpill(spill_space());
    side.BindCompactor(compactor());
    side.SetAccessAware(access_aware_eviction());
  }
  if (governor() != nullptr) governor()->Register(this);
}

SharedJoin::~SharedJoin() {
  if (governor() != nullptr) governor()->Unregister(this);
}

void SharedJoin::RefreshArenaBytes() {
  int64_t bytes = 0;
  size_t resident = 0;
  int64_t coldest_index = TupleArrangement::kNoVersion;
  for (const TupleArrangement& side : sides_) {
    side.AddBytes(&bytes, &resident, &coldest_index);
  }
  state_arena_bytes_ = bytes;
  if (governor() == nullptr) return;
  int64_t coldest_end = std::numeric_limits<int64_t>::max();
  if (coldest_index != TupleArrangement::kNoVersion) {
    auto slice = tracker().SliceByIndex(coldest_index);
    coldest_end = slice.has_value() ? slice->end : coldest_index;
  }
  // Report the read heat of the slice SpillOnce would actually pick, so
  // the governor's cross-operator ordering sees the same access signal
  // (0 with access-awareness off — ordering stays coldest-end-first).
  int64_t victim_reads = 0;
  if (access_aware_eviction() && coldest_index != TupleArrangement::kNoVersion) {
    int64_t r0 = 0, r1 = 0;
    const int64_t v0 = sides_[0].PickVictim(&r0);
    const int64_t v1 = sides_[1].PickVictim(&r1);
    if (v0 == TupleArrangement::kNoVersion) {
      victim_reads = v1 == TupleArrangement::kNoVersion ? 0 : r1;
    } else if (v1 == TupleArrangement::kNoVersion) {
      victim_reads = r0;
    } else {
      victim_reads = std::tie(r0, v0) <= std::tie(r1, v1) ? r0 : r1;
    }
  }
  governor()->Update(this, resident, coldest_end, victim_reads);
}

void SharedJoin::EnforceBudget() {
  if (governor() != nullptr) governor()->Enforce(this);
}

size_t SharedJoin::SpillOnce() {
  // Victim = the least-read (access-aware) or coldest resident slice;
  // both sides spill at that index (their windows expire together), and
  // the CL deltas at or below it go with them. The pair memo stays: it
  // holds computed results that every later window over the pair reuses.
  int64_t r0 = 0, r1 = 0;
  const int64_t v0 = sides_[0].PickVictim(&r0);
  const int64_t v1 = sides_[1].PickVictim(&r1);
  int64_t victim;
  if (v0 == TupleArrangement::kNoVersion) {
    victim = v1;
  } else if (v1 == TupleArrangement::kNoVersion) {
    victim = v0;
  } else {
    // Both sides see the same trigger reads, so this usually degenerates
    // to min(v0, v1); when the resident sets diverge, prefer fewer reads.
    victim = std::tie(r0, v0) <= std::tie(r1, v1) ? v0 : v1;
  }
  if (victim == TupleArrangement::kNoVersion) return 0;
  const int64_t coldest = std::min(sides_[0].ColdestResident(),
                                   sides_[1].ColdestResident());
  if (victim != coldest) ++reload_saves_;  // a hot slice kept resident
  size_t released = sides_[0].SpillAt(victim) + sides_[1].SpillAt(victim);
  released += tracker().cl_table().SpillBelow(victim, spill_space());
  RefreshArenaBytes();
  return released;
}

void SharedJoin::ProcessRecord(int port, spe::Record record,
                               spe::Collector* out) {
  (void)out;
  NoteEventTime(record.event_time);
  if (record.event_time < current_watermark()) {
    ++records_late_;  // cannot be assigned consistently; dropped
    if (metrics_on()) {
      (record.tags & hosted_mask()).ForEachSetBit([&](size_t slot) {
        if (obs::QuerySeries* s = SeriesForSlot(slot)) s->late_drops.Add();
      });
    }
    return;
  }
  QuerySet tags = record.tags & hosted_mask();
  ++bitset_ops_;
  if (tags.None()) return;
  if (meter_costs()) {
    tags.ForEachSetBit([&](size_t slot) {
      if (obs::QuerySeries* s = SeriesForSlot(slot)) s->cost_rows.Add();
    });
  }
  const SliceInfo slice = tracker().SliceFor(record.event_time);
  sides_[port].StoreAt(slice.index, current_mode()).Insert(record.row, tags);
  RefreshArenaBytes();
  EnforceBudget();
}

void SharedJoin::ProcessBatch(int port, spe::RecordBatch& records,
                              spe::Collector* out) {
  (void)out;
  // One batch arrives from one (port, sender), so a single write cursor
  // suffices; SliceCursor revalidates by [start, end) containment (see
  // window_math.h for the pattern's safety argument).
  SliceCursor cursor;
  TupleStore* cached_store = nullptr;
  int64_t ops = 0;
  for (spe::Record& record : records) {
    NoteEventTime(record.event_time);
    if (record.event_time < current_watermark()) {
      ++records_late_;  // cannot be assigned consistently; dropped
      if (metrics_on()) {
        (record.tags & hosted_mask()).ForEachSetBit([&](size_t slot) {
          if (obs::QuerySeries* s = SeriesForSlot(slot)) {
            s->late_drops.Add();
          }
        });
      }
      continue;
    }
    scratch_tags_ = record.tags;
    scratch_tags_ &= hosted_mask();
    ++ops;
    if (scratch_tags_.None()) continue;
    if (meter_costs()) {
      scratch_tags_.ForEachSetBit([&](size_t slot) {
        if (obs::QuerySeries* s = SeriesForSlot(slot)) s->cost_rows.Add();
      });
    }
    if (cursor.Advance(tracker(), record.event_time) ||
        cached_store == nullptr) {
      cached_store =
          &sides_[port].StoreAt(cursor.slice().index, current_mode());
    }
    cached_store->Insert(record.row, scratch_tags_);
  }
  bitset_ops_ += ops;
  RefreshArenaBytes();
  EnforceBudget();
}

const std::vector<JoinedTuple>& SharedJoin::MemoFor(int64_t a, int64_t b,
                                                    bool* computed) {
  if (const std::vector<JoinedTuple>* hit = memo_.Find(a, b)) {
    ++pairs_reused_;
    *computed = false;
    return *hit;
  }
  ++pairs_computed_;
  *computed = true;
  std::vector<JoinedTuple>& results = memo_.Emplace(a, b);
  const TupleStore* sa = sides_[0].AtVersion(a);
  const TupleStore* sb = sides_[1].AtVersion(b);
  if (sa != nullptr && sb != nullptr) {
    const QuerySet& mask = tracker().cl_table().Mask(a, b);
    bitset_ops_ += TupleStore::Join(
        *sa, *sb, mask,
        [&](const spe::Row& left, const spe::Row& right, QuerySet tags) {
          JoinedTuple t;
          t.row = spe::Row::Concat(left, right);
          t.tags = std::move(tags);
          results.push_back(std::move(t));
        });
  }
  return results;
}

void SharedJoin::TriggerWindows(TimestampMs start, TimestampMs end,
                                const std::vector<TriggeredQuery>& queries,
                                spe::Collector* out) {
  QuerySet active_bits;
  std::vector<std::pair<int, QueryId>> draining;  // (slot, id)
  for (const TriggeredQuery& tq : queries) {
    if (tq.draining) {
      draining.emplace_back(tq.query->slot, tq.query->id);
    } else {
      active_bits.Set(tq.query->slot);
    }
  }

  const std::vector<SliceInfo> slices = tracker().SlicesIn(start, end);
  for (const SliceInfo& s : slices) {
    sides_[0].NoteRead(s.index);
    sides_[1].NoteRead(s.index);
  }
  const TimestampMs result_time = end - 1;
  for (const SliceInfo& a : slices) {
    for (const SliceInfo& b : slices) {
      bool computed = false;
      const std::vector<JoinedTuple>& tuples =
          MemoFor(a.index, b.index, &computed);
      if (metrics_on()) {
        // The first toucher pays for the pair's computation; every other
        // query (in this trigger and later ones) reuses the memo.
        bool charge_compute = computed;
        for (const TriggeredQuery& tq : queries) {
          obs::QuerySeries* s = SeriesForQuery(tq.query->id);
          if (s == nullptr) continue;
          (charge_compute ? s->slices_computed : s->slices_reused).Add();
          charge_compute = false;
        }
      }
      for (const JoinedTuple& t : tuples) {
        QuerySet shared_tags = t.tags & active_bits;
        ++bitset_ops_;
        if (shared_tags.Any()) {
          out->EmitRecord(result_time, t.row, std::move(shared_tags));
        }
        for (const auto& [slot, id] : draining) {
          if (t.tags.Test(slot)) {
            spe::StreamElement el;
            el.kind = spe::ElementKind::kRecord;
            el.record.event_time = result_time;
            el.record.row = t.row;
            el.record.tags = QuerySet::Single(slot);
            el.record.channel = id;
            out->Emit(std::move(el));
          }
        }
      }
    }
  }
}

void SharedJoin::OnSlicesEvicted(const std::vector<int64_t>& indices) {
  if (indices.empty()) return;
  const int64_t max_evicted = indices.back();
  sides_[0].EvictThrough(max_evicted);
  sides_[1].EvictThrough(max_evicted);
  memo_.EvictThrough(max_evicted);
  RefreshArenaBytes();
}

void SharedJoin::OnModeSwitch(StoreMode mode) {
  // Sec. 3.2.3: convert the physical layout of all live slices.
  sides_[0].ConvertAll(mode);
  sides_[1].ConvertAll(mode);
}

Status SharedJoin::SnapshotState(spe::StateWriter* writer) {
  SerializeBase(writer);
  sides_[0].Serialize(writer);
  sides_[1].Serialize(writer);
  // The memo is a cache: recomputed on demand after restore.
  writer->WriteI64(pairs_computed_);
  writer->WriteI64(records_late_);
  return Status::OK();
}

Status SharedJoin::RestoreState(spe::StateReader* reader) {
  ASTREAM_RETURN_IF_ERROR(RestoreBase(reader));
  memo_.Clear();
  ASTREAM_RETURN_IF_ERROR(sides_[0].Restore(reader));
  ASTREAM_RETURN_IF_ERROR(sides_[1].Restore(reader));
  pairs_computed_ = reader->ReadI64();
  records_late_ = reader->ReadI64();
  if (!reader->Ok()) return Status::Internal("bad shared-join snapshot");
  // Restored state is fully resident; shed back down to budget before
  // replay resumes.
  RefreshArenaBytes();
  EnforceBudget();
  return Status::OK();
}

}  // namespace astream::core
