#include "core/shared_selection.h"

#include <chrono>
#include <map>

#include "common/logging.h"

namespace astream::core {
namespace {

bool DefaultHosts(StreamSide side, const ActiveQuery& q) {
  if (side == StreamSide::kA) return true;
  return q.desc.HasJoin();
}

}  // namespace

const std::vector<Predicate> SharedSelection::kNoPredicates;

SharedSelection::SharedSelection(Config config)
    : config_(std::move(config)) {
  if (!config_.hosts) {
    const StreamSide side = config_.side;
    config_.hosts = [side](const ActiveQuery& q) {
      return DefaultHosts(side, q);
    };
  }
  if (config_.metrics != nullptr && config_.metrics->enabled()) {
    metrics_on_ = true;
    meter_on_ = config_.meter_costs;
    const std::string prefix =
        config_.stream >= 0
            ? "selection.s" + std::to_string(config_.stream) + "."
            : (config_.side == StreamSide::kA ? "selection.a."
                                              : "selection.b.");
    m_records_in_ = config_.metrics->GetCounter(prefix + "records_in");
    m_records_out_ = config_.metrics->GetCounter(prefix + "records_out");
    m_records_dropped_ =
        config_.metrics->GetCounter(prefix + "records_dropped");
  }
}

void SharedSelection::RebuildIndex() {
  hosted_mask_ = table_.SlotsWhere(config_.hosts);
  if (meter_on_) {
    slot_series_.assign(table_.num_slots(), nullptr);
    table_.ForEach([&](const ActiveQuery& q) {
      if (config_.hosts(q)) {
        slot_series_[q.slot] = config_.metrics->SeriesFor(q.id);
      }
    });
  }
  index_.clear();
  if (!config_.use_predicate_index) return;
  std::map<Predicate, QuerySet> distinct;
  table_.ForEach([&](const ActiveQuery& q) {
    if (!config_.hosts(q)) return;
    for (const Predicate& p : PredicatesOf(q)) {
      distinct[p].Set(q.slot);
    }
  });
  index_.reserve(distinct.size());
  for (auto& [predicate, queries] : distinct) {
    index_.push_back(IndexedPredicate{predicate, std::move(queries)});
  }
}

QuerySet SharedSelection::ComputeTags(const spe::Row& row) const {
  QuerySet tags;
  ComputeTagsInto(row, &tags);
  return tags;
}

void SharedSelection::ComputeTagsInto(const spe::Row& row,
                                      QuerySet* tags) const {
  if (config_.use_predicate_index) {
    // Start from every hosted query; each distinct predicate is evaluated
    // exactly once and, when it fails, removes the bits of all queries
    // whose conjunction contains it.
    *tags = hosted_mask_;
    for (const IndexedPredicate& ip : index_) {
      if (tags->None()) break;
      if (!ip.predicate.Eval(row)) tags->AndNot(ip.queries);
    }
    return;
  }
  tags->ClearAll();
  table_.ForEach([&](const ActiveQuery& q) {
    if (config_.hosts(q) && EvalConjunction(PredicatesOf(q), row)) {
      tags->Set(q.slot);
    }
  });
}

void SharedSelection::ProcessRecord(int port, spe::Record record,
                                    spe::Collector* out) {
  (void)port;
  std::chrono::steady_clock::time_point start;
  if (config_.measure_overhead) start = std::chrono::steady_clock::now();

  QuerySet tags = ComputeTags(record.row);

  if (config_.measure_overhead) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    queryset_nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count(),
        std::memory_order_relaxed);
  }

  if (tags.None()) {
    ++records_dropped_;
    if (metrics_on_) {
      m_records_in_->Add();
      m_records_dropped_->Add();
    }
    return;
  }
  if (metrics_on_) {
    m_records_in_->Add();
    m_records_out_->Add();
  }
  if (meter_on_) {
    tags.ForEachSetBit([&](size_t slot) {
      if (slot < slot_series_.size() && slot_series_[slot] != nullptr) {
        slot_series_[slot]->cost_rows.Add();
      }
    });
  }
  out->EmitRecord(record.event_time, std::move(record.row),
                  std::move(tags));
}

void SharedSelection::ProcessBatch(int port, spe::RecordBatch& records,
                                   spe::Collector* out) {
  (void)port;
  const int64_t in = static_cast<int64_t>(records.size());
  int64_t dropped = 0;
  if (config_.measure_overhead) {
    // Per-tuple timing, matching ProcessRecord: only query-set generation
    // is measured, never downstream emission.
    int64_t nanos = 0;
    for (spe::Record& record : records) {
      const auto start = std::chrono::steady_clock::now();
      ComputeTagsInto(record.row, &scratch_tags_);
      nanos += std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - start)
                   .count();
      if (scratch_tags_.None()) {
        ++dropped;
        continue;
      }
      if (meter_on_) MeterMatchedRows();
      out->EmitRecord(record.event_time, std::move(record.row),
                      QuerySet(scratch_tags_));
    }
    queryset_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  } else {
    for (spe::Record& record : records) {
      ComputeTagsInto(record.row, &scratch_tags_);
      if (scratch_tags_.None()) {
        ++dropped;
        continue;
      }
      if (meter_on_) MeterMatchedRows();
      out->EmitRecord(record.event_time, std::move(record.row),
                      QuerySet(scratch_tags_));
    }
  }
  records_dropped_ += dropped;
  if (metrics_on_) {
    m_records_in_->Add(in);
    m_records_dropped_->Add(dropped);
    m_records_out_->Add(in - dropped);
  }
}

void SharedSelection::OnMarker(const spe::ControlMarker& marker,
                               spe::Collector* out) {
  (void)out;
  const Changelog* log = Changelog::FromMarker(marker);
  if (log == nullptr) return;
  const Status s = table_.Apply(*log);
  if (!s.ok()) {
    ASTREAM_LOG(kError, "shared-selection")
        << "changelog apply failed: " << s.ToString();
    return;
  }
  RebuildIndex();
}

Status SharedSelection::SnapshotState(spe::StateWriter* writer) {
  table_.Serialize(writer);
  writer->WriteI64(records_dropped_);
  return Status::OK();
}

Status SharedSelection::RestoreState(spe::StateReader* reader) {
  ASTREAM_RETURN_IF_ERROR(table_.Restore(reader));
  records_dropped_ = reader->ReadI64();
  RebuildIndex();
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad selection snapshot");
}

}  // namespace astream::core
