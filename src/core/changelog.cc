#include "core/changelog.h"

namespace astream::core {

void Changelog::ComputeChangelogSet() {
  changelog_set = QuerySet::AllSet(num_slots);
  for (const QueryDeactivation& d : deleted) changelog_set.Reset(d.slot);
  for (const QueryActivation& c : created) changelog_set.Reset(c.slot);
}

std::string Changelog::ToString() const {
  std::string s = "changelog{epoch=" + std::to_string(epoch) +
                  ", t=" + std::to_string(time);
  s += ", +[";
  for (size_t i = 0; i < created.size(); ++i) {
    if (i > 0) s += ",";
    s += "Q" + std::to_string(created[i].id) + "@s" +
         std::to_string(created[i].slot);
  }
  s += "], -[";
  for (size_t i = 0; i < deleted.size(); ++i) {
    if (i > 0) s += ",";
    s += "Q" + std::to_string(deleted[i].id) + "@s" +
         std::to_string(deleted[i].slot);
  }
  s += "], cl-set=" + changelog_set.ToString(num_slots) + "}";
  return s;
}

void Changelog::Serialize(spe::StateWriter* writer) const {
  writer->WriteI64(epoch);
  writer->WriteI64(time);
  writer->WriteU64(num_slots);
  writer->WriteU64(created.size());
  for (const QueryActivation& c : created) {
    writer->WriteI64(c.id);
    writer->WriteI64(c.slot);
    writer->WriteI64(c.created_at);
    c.desc.Serialize(writer);
  }
  writer->WriteU64(deleted.size());
  for (const QueryDeactivation& d : deleted) {
    writer->WriteI64(d.id);
    writer->WriteI64(d.slot);
  }
}

Changelog Changelog::Deserialize(spe::StateReader* reader) {
  Changelog log;
  log.epoch = reader->ReadI64();
  log.time = reader->ReadI64();
  log.num_slots = reader->ReadU64();
  const uint64_t created = reader->ReadU64();
  for (uint64_t i = 0; i < created && reader->Ok(); ++i) {
    QueryActivation a;
    a.id = reader->ReadI64();
    a.slot = static_cast<int>(reader->ReadI64());
    a.created_at = reader->ReadI64();
    a.desc = QueryDescriptor::Deserialize(reader);
    log.created.push_back(std::move(a));
  }
  const uint64_t deleted = reader->ReadU64();
  for (uint64_t i = 0; i < deleted && reader->Ok(); ++i) {
    QueryDeactivation d;
    d.id = reader->ReadI64();
    d.slot = static_cast<int>(reader->ReadI64());
    log.deleted.push_back(d);
  }
  log.ComputeChangelogSet();
  return log;
}

spe::ControlMarker Changelog::MakeMarker(
    std::shared_ptr<const Changelog> log) {
  spe::ControlMarker marker;
  marker.kind = spe::MarkerKind::kChangelog;
  marker.epoch = log->epoch;
  marker.time = log->time;
  marker.payload = std::move(log);
  return marker;
}

const Changelog* Changelog::FromMarker(const spe::ControlMarker& marker) {
  if (marker.kind != spe::MarkerKind::kChangelog) return nullptr;
  return static_cast<const Changelog*>(marker.payload.get());
}

Status ActiveQueryTable::Apply(const Changelog& log) {
  if (log.epoch <= last_epoch_) {
    return Status::FailedPrecondition("changelog epoch replayed");
  }
  if (log.num_slots > slots_.size()) slots_.resize(log.num_slots);
  for (const QueryDeactivation& d : log.deleted) {
    if (d.slot < 0 || d.slot >= static_cast<int>(slots_.size()) ||
        !slots_[d.slot].has_value() || slots_[d.slot]->id != d.id) {
      return Status::InvalidArgument(
          "changelog deletes query not present in slot " +
          std::to_string(d.slot));
    }
    slots_[d.slot].reset();
    --num_active_;
  }
  for (const QueryActivation& c : log.created) {
    if (c.slot < 0 || c.slot >= static_cast<int>(slots_.size()) ||
        slots_[c.slot].has_value()) {
      return Status::InvalidArgument(
          "changelog creates query in occupied/invalid slot " +
          std::to_string(c.slot));
    }
    ActiveQuery q;
    q.id = c.id;
    q.slot = c.slot;
    q.created_at = c.created_at;
    q.desc = c.desc;
    slots_[c.slot] = std::move(q);
    ++num_active_;
  }
  last_epoch_ = log.epoch;
  return Status::OK();
}

const ActiveQuery* ActiveQueryTable::QueryAt(int slot) const {
  if (slot < 0 || slot >= static_cast<int>(slots_.size())) return nullptr;
  return slots_[slot].has_value() ? &*slots_[slot] : nullptr;
}

const ActiveQuery* ActiveQueryTable::FindById(QueryId id) const {
  for (const auto& q : slots_) {
    if (q.has_value() && q->id == id) return &*q;
  }
  return nullptr;
}

void ActiveQueryTable::Serialize(spe::StateWriter* writer) const {
  writer->WriteI64(last_epoch_);
  writer->WriteU64(slots_.size());
  for (const auto& q : slots_) {
    writer->WriteBool(q.has_value());
    if (q.has_value()) {
      writer->WriteI64(q->id);
      writer->WriteI64(q->slot);
      writer->WriteI64(q->created_at);
      q->desc.Serialize(writer);
    }
  }
}

Status ActiveQueryTable::Restore(spe::StateReader* reader) {
  slots_.clear();
  num_active_ = 0;
  last_epoch_ = reader->ReadI64();
  const uint64_t n = reader->ReadU64();
  slots_.resize(n);
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    if (reader->ReadBool()) {
      ActiveQuery q;
      q.id = reader->ReadI64();
      q.slot = static_cast<int>(reader->ReadI64());
      q.created_at = reader->ReadI64();
      q.desc = QueryDescriptor::Deserialize(reader);
      slots_[i] = std::move(q);
      ++num_active_;
    }
  }
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad ActiveQueryTable snapshot");
}

}  // namespace astream::core
