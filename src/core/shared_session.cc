#include "core/shared_session.h"

#include <algorithm>
#include <set>

namespace astream::core {

QueryId SharedSession::Submit(QueryDescriptor desc, TimestampMs now) {
  const QueryId id = next_query_id_++;
  SubmitWithId(id, std::move(desc), now);
  return id;
}

void SharedSession::SubmitWithId(QueryId id, QueryDescriptor desc,
                                 TimestampMs now) {
  Request r;
  r.create = true;
  r.id = id;
  r.desc = std::move(desc);
  r.enqueued_at = now;
  pending_creates_[r.id] = r.desc;
  if (!oldest_pending_since_.has_value()) oldest_pending_since_ = now;
  pending_.push_back(std::move(r));
}

Status SharedSession::Cancel(QueryId id, TimestampMs now) {
  // A creation still sitting in the batch is simply dropped.
  auto pc = pending_creates_.find(id);
  if (pc != pending_creates_.end()) {
    pending_creates_.erase(pc);
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [&](const Request& r) {
                                    return r.create && r.id == id;
                                  }),
                   pending_.end());
    if (pending_.empty()) oldest_pending_since_.reset();
    return Status::OK();
  }
  if (!active_.count(id)) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not active");
  }
  // Ignore duplicate cancels already buffered.
  for (const Request& r : pending_) {
    if (!r.create && r.id == id) return Status::OK();
  }
  Request r;
  r.create = false;
  r.id = id;
  r.enqueued_at = now;
  if (!oldest_pending_since_.has_value()) oldest_pending_since_ = now;
  pending_.push_back(std::move(r));
  return Status::OK();
}

std::shared_ptr<const Changelog> SharedSession::MaybeFlush(TimestampMs now,
                                                           bool force) {
  if (pending_.empty()) return nullptr;
  const bool batch_full = pending_.size() >= config_.batch_size;
  const bool timed_out =
      oldest_pending_since_.has_value() &&
      now - *oldest_pending_since_ >= config_.max_timeout_ms;
  if (!force && !batch_full && !timed_out) return nullptr;

  auto log = std::make_shared<Changelog>();
  log->epoch = next_epoch_++;
  // Strictly after `now`: tuples stamped at `now` and already pushed must
  // precede the marker in event time (the alignment invariant).
  log->time = std::max(now + 1, last_marker_time_ + 1);
  last_marker_time_ = log->time;

  size_t taken = 0;
  auto& acks = awaiting_ack_[log->epoch];
  while (!pending_.empty() && taken < config_.batch_size) {
    Request r = std::move(pending_.front());
    pending_.pop_front();
    ++taken;
    acks.emplace_back(r.id, r.enqueued_at);
    if (r.create) {
      QueryActivation a;
      a.id = r.id;
      a.slot = slots_.Acquire();
      a.created_at = log->time;
      a.desc = std::move(r.desc);
      active_[a.id] = ActiveQuery{a.slot, a.created_at};
      pending_creates_.erase(a.id);
      log->created.push_back(std::move(a));
    } else {
      auto it = active_.find(r.id);
      if (it == active_.end()) continue;  // already deleted
      QueryDeactivation d;
      d.id = r.id;
      d.slot = it->second.slot;
      slots_.Release(d.slot);
      active_.erase(it);
      log->deleted.push_back(d);
    }
  }
  oldest_pending_since_ =
      pending_.empty() ? std::nullopt : std::make_optional(now);
  log->num_slots = slots_.num_slots();
  log->ComputeChangelogSet();

  // Sec. 3.2.3: advise downstream operators about the better layout when
  // the active-query count crosses the threshold (either direction).
  const bool want_list = active_.size() > config_.mode_switch_threshold;
  if (want_list != advised_list_mode_) {
    advised_list_mode_ = want_list;
    pending_mode_switch_ =
        want_list ? StoreMode::kList : StoreMode::kGrouped;
  }
  return log;
}

std::optional<StoreMode> SharedSession::TakeModeSwitch() {
  auto m = pending_mode_switch_;
  pending_mode_switch_.reset();
  return m;
}

void SharedSession::OnEpochDeployed(
    int64_t epoch, TimestampMs now,
    std::vector<std::pair<QueryId, TimestampMs>>* out) {
  auto it = awaiting_ack_.find(epoch);
  if (it == awaiting_ack_.end()) return;
  if (out != nullptr) {
    for (const auto& [id, enqueued_at] : it->second) {
      out->emplace_back(id, now - enqueued_at);
    }
  }
  awaiting_ack_.erase(it);
}

void SharedSession::Serialize(spe::StateWriter* writer) const {
  writer->WriteI64(next_query_id_);
  writer->WriteI64(next_epoch_);
  writer->WriteI64(last_marker_time_);
  writer->WriteBool(advised_list_mode_);
  writer->WriteU64(active_.size());
  for (const auto& [id, q] : active_) {
    writer->WriteI64(id);
    writer->WriteI64(q.slot);
    writer->WriteI64(q.created_at);
  }
  writer->WriteU64(slots_.num_slots());
}

Status SharedSession::Restore(spe::StateReader* reader) {
  pending_.clear();
  pending_creates_.clear();
  awaiting_ack_.clear();
  active_.clear();
  oldest_pending_since_.reset();
  pending_mode_switch_.reset();
  next_query_id_ = reader->ReadI64();
  next_epoch_ = reader->ReadI64();
  last_marker_time_ = reader->ReadI64();
  advised_list_mode_ = reader->ReadBool();
  const uint64_t n = reader->ReadU64();
  std::set<int> used;
  for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
    const QueryId id = reader->ReadI64();
    const int slot = static_cast<int>(reader->ReadI64());
    const TimestampMs created_at = reader->ReadI64();
    active_[id] = ActiveQuery{slot, created_at};
    used.insert(slot);
  }
  const uint64_t num_slots = reader->ReadU64();
  // Rebuild the allocator: acquire every slot, release the unused ones
  // (lowest-free-first order is restored exactly).
  slots_ = SlotAllocator();
  for (uint64_t s = 0; s < num_slots; ++s) slots_.Acquire();
  for (uint64_t s = 0; s < num_slots; ++s) {
    if (!used.count(static_cast<int>(s))) {
      slots_.Release(static_cast<int>(s));
    }
  }
  return reader->Ok() ? Status::OK()
                      : Status::Internal("bad session snapshot");
}

std::vector<QueryId> SharedSession::ActiveIds() const {
  std::vector<QueryId> ids;
  ids.reserve(active_.size() + pending_creates_.size());
  for (const auto& [id, q] : active_) ids.push_back(id);
  for (const auto& [id, desc] : pending_creates_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

TimestampMs SharedSession::CreatedAt(QueryId id) const {
  auto it = active_.find(id);
  return it == active_.end() ? kMinTimestamp : it->second.created_at;
}

}  // namespace astream::core
