#ifndef ASTREAM_CORE_REGISTRY_H_
#define ASTREAM_CORE_REGISTRY_H_

#include <set>

#include "core/changelog.h"

namespace astream::core {

/// Session-side slot bookkeeping. Reuses slots of deleted queries so
/// query-sets stay compact (Fig. 3c); grows the universe only when no free
/// slot exists. Lowest free slot first, which keeps the assignment
/// deterministic and replayable.
class SlotAllocator {
 public:
  /// Returns the slot for a new query (lowest free, or a fresh one).
  int Acquire() {
    if (!free_slots_.empty()) {
      const int slot = *free_slots_.begin();
      free_slots_.erase(free_slots_.begin());
      return slot;
    }
    return num_slots_++;
  }

  /// Releases a slot for reuse.
  void Release(int slot) { free_slots_.insert(slot); }

  /// Current universe size (highest ever slot + 1).
  size_t num_slots() const { return static_cast<size_t>(num_slots_); }
  size_t num_free() const { return free_slots_.size(); }

 private:
  int num_slots_ = 0;
  std::set<int> free_slots_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_REGISTRY_H_
