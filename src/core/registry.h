#ifndef ASTREAM_CORE_REGISTRY_H_
#define ASTREAM_CORE_REGISTRY_H_

#include <map>
#include <optional>
#include <set>

#include "core/changelog.h"
#include "core/window_math.h"
#include "spe/window.h"

namespace astream::core {

/// Session-side slot bookkeeping. Reuses slots of deleted queries so
/// query-sets stay compact (Fig. 3c); grows the universe only when no free
/// slot exists. Lowest free slot first, which keeps the assignment
/// deterministic and replayable.
class SlotAllocator {
 public:
  /// Returns the slot for a new query (lowest free, or a fresh one).
  int Acquire() {
    if (!free_slots_.empty()) {
      const int slot = *free_slots_.begin();
      free_slots_.erase(free_slots_.begin());
      return slot;
    }
    return num_slots_++;
  }

  /// Releases a slot for reuse.
  void Release(int slot) { free_slots_.insert(slot); }

  /// Current universe size (highest ever slot + 1).
  size_t num_slots() const { return static_cast<size_t>(num_slots_); }
  size_t num_free() const { return free_slots_.size(); }

 private:
  int num_slots_ = 0;
  std::set<int> free_slots_;
};

/// A factor lattice: the edge set { t : t ≡ anchor (mod period) }.
struct FactorWindow {
  TimestampMs anchor = 0;  // in [0, period)
  TimestampMs period = 0;

  bool operator<(const FactorWindow& o) const {
    return period != o.period ? period < o.period : anchor < o.anchor;
  }
  bool operator==(const FactorWindow& o) const {
    return anchor == o.anchor && period == o.period;
  }
};

/// Factor-window planning (DESIGN.md §12, after Wu et al., PAPERS.md).
///
/// A time window (length, slide) anchored at `origin` has every start edge
/// (origin + k*slide) and every end edge (origin + length + k*slide) on
/// the lattice { t ≡ origin (mod g) } with g = gcd(length, slide), since g
/// divides both slide and length. Registering the lattice instead of the
/// per-query edge generators lets every query whose spec is composable
/// from a compatible factor drive slicing through ONE shared edge source:
/// with F distinct factors the slicer's edge union is O(F), not
/// O(queries), and all those queries' windows tile exactly onto the same
/// shared factor slices.
///
/// Cost model: the lattice is at most slide/g times denser than the
/// query's own edge union. A rewrite is accepted only when 2*g >= slide
/// (density blow-up <= 1.5x, e.g. a 45s/10s window: g=5); pathological
/// specs like 7s/3s (g=1, 3x denser) keep their exact per-query edges.
/// All decisions are pure functions of changelog-applied (origin, spec)
/// values plus deterministic ordered-map iteration, so replay, restore
/// and every shard make identical choices.
class FactorRegistry {
 public:
  struct Stats {
    /// Queries that registered a fresh factor lattice.
    int64_t rewrites = 0;
    /// Queries attached to an already-registered compatible lattice.
    int64_t reuses = 0;
    /// Queries that kept exact per-query edges (cost bound failed).
    int64_t fallbacks = 0;
  };

  /// The query's own GCD-derived factor, or nullopt when the cost bound
  /// rejects the rewrite.
  static std::optional<FactorWindow> ChooseFactor(
      TimestampMs origin, const spe::WindowSpec& spec) {
    if (!spec.IsTimeWindow()) return std::nullopt;
    const TimestampMs g = WindowGcd(spec.length, spec.slide);
    if (g <= 0 || 2 * g < spec.slide) return std::nullopt;
    return FactorWindow{FloorMod(origin, g), g};
  }

  /// Registers `slot`'s factor. Prefers the coarsest already-registered
  /// lattice the query can ride (period f' dividing g, congruent anchor,
  /// still within the cost bound); otherwise registers the query's own GCD
  /// factor. Returns nullopt (fallback) when no lattice passes the bound —
  /// the caller must then track the query's exact edges itself.
  std::optional<FactorWindow> AcquireFor(int slot, TimestampMs origin,
                                         const spe::WindowSpec& spec) {
    const auto own = ChooseFactor(origin, spec);
    if (!own.has_value()) {
      ++stats_.fallbacks;
      return std::nullopt;
    }
    // Coarsest compatible existing lattice (map is period-ascending, so
    // the last match wins deterministically).
    std::optional<FactorWindow> best;
    for (const auto& [fw, refs] : lattices_) {
      if (fw.period > own->period) break;
      if (own->period % fw.period != 0) continue;
      if (FloorMod(own->anchor, fw.period) != fw.anchor) continue;
      if (2 * fw.period < spec.slide) continue;
      best = fw;
    }
    const bool reused = best.has_value();
    const FactorWindow chosen = reused ? *best : *own;
    ++lattices_[chosen];
    by_slot_[slot] = chosen;
    ++(reused ? stats_.reuses : stats_.rewrites);
    return chosen;
  }

  /// Drops `slot`'s registration (no-op for fallback slots). Already
  /// materialized slice boundaries stay valid; the lattice just stops
  /// generating future edges once its last rider is gone.
  void Release(int slot) {
    auto it = by_slot_.find(slot);
    if (it == by_slot_.end()) return;
    auto lit = lattices_.find(it->second);
    if (lit != lattices_.end() && --lit->second == 0) lattices_.erase(lit);
    by_slot_.erase(it);
  }

  template <typename Fn>
  void ForEachLattice(Fn&& fn) const {
    for (const auto& [fw, refs] : lattices_) fn(fw.anchor, fw.period);
  }

  /// The lattice `slot` rides, if any.
  std::optional<FactorWindow> FactorOf(int slot) const {
    auto it = by_slot_.find(slot);
    if (it == by_slot_.end()) return std::nullopt;
    return it->second;
  }

  size_t NumLattices() const { return lattices_.size(); }
  size_t NumRegistered() const { return by_slot_.size(); }
  const Stats& stats() const { return stats_; }

  void Serialize(spe::StateWriter* writer) const {
    writer->WriteU64(by_slot_.size());
    for (const auto& [slot, fw] : by_slot_) {
      writer->WriteI64(slot);
      writer->WriteI64(fw.anchor);
      writer->WriteI64(fw.period);
    }
    writer->WriteI64(stats_.rewrites);
    writer->WriteI64(stats_.reuses);
    writer->WriteI64(stats_.fallbacks);
  }

  Status Restore(spe::StateReader* reader) {
    lattices_.clear();
    by_slot_.clear();
    const uint64_t n = reader->ReadU64();
    for (uint64_t i = 0; i < n && reader->Ok(); ++i) {
      const int slot = static_cast<int>(reader->ReadI64());
      FactorWindow fw;
      fw.anchor = reader->ReadI64();
      fw.period = reader->ReadI64();
      by_slot_[slot] = fw;
      ++lattices_[fw];
    }
    stats_.rewrites = reader->ReadI64();
    stats_.reuses = reader->ReadI64();
    stats_.fallbacks = reader->ReadI64();
    return reader->Ok() ? Status::OK()
                        : Status::Internal("bad FactorRegistry snapshot");
  }

 private:
  std::map<FactorWindow, int> lattices_;  // -> refcount
  std::map<int, FactorWindow> by_slot_;
  Stats stats_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_REGISTRY_H_
