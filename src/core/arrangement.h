#ifndef ASTREAM_CORE_ARRANGEMENT_H_
#define ASTREAM_CORE_ARRANGEMENT_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/cl_table.h"
#include "core/slice_store.h"
#include "core/window_math.h"

namespace astream::core {

/// Shared arrangements (DESIGN.md §12, after McSherry et al., PAPERS.md).
///
/// An arrangement is the multiversioned, keyed, arena-backed index of one
/// stream's state inside a shared operator: version = runtime-slice index,
/// payload = that slice's keyed store. The shared operators no longer own
/// loose per-slice store maps — they write through StoreAt(version) and
/// read through versioned cursors (AtVersion / Compose), which centralizes
/// eviction, spill-victim selection, byte accounting and checkpointing in
/// one layer, and lets many queries with different windows read one
/// maintained index instead of each paying for its own.

/// Tuple arrangement of one join side: slice index -> TupleStore.
class TupleArrangement {
 public:
  static constexpr int64_t kNoVersion = std::numeric_limits<int64_t>::max();

  /// Enables spilling for stores created from here on.
  void BindSpill(storage::SpillSpace* space) { spill_ = space; }

  /// Enables background run compaction for this side's stores.
  void BindCompactor(storage::Compactor* compactor) {
    compactor_ = compactor;
  }

  /// Access-aware eviction (DESIGN.md §13): PickVictim weighs per-version
  /// read counts so standing queries stop re-loading the slice they read
  /// every slide. Off = PickVictim degenerates to ColdestResident.
  void SetAccessAware(bool on) { access_aware_ = on; }

  /// Records that `version` was read by a trigger (operators call this
  /// from their window-evaluation paths).
  void NoteRead(int64_t version) {
    if (access_aware_) ++reads_[version];
  }

  /// Spill victim under the current policy: the resident version with the
  /// fewest recorded reads (ties to the oldest), or simply the coldest
  /// when access-awareness is off. `*reads` gets the victim's read count
  /// (0 when none). kNoVersion when nothing is resident.
  int64_t PickVictim(int64_t* reads) const;

  /// Writer cursor: the store of `version`, created with `mode` on first
  /// write.
  TupleStore& StoreAt(int64_t version, StoreMode mode);

  /// Versioned read cursor: nullptr when the version holds no state.
  const TupleStore* AtVersion(int64_t version) const;

  /// Mode-switch marker: convert every live version's physical layout.
  void ConvertAll(StoreMode mode);

  /// Drops every version <= max_version (slice eviction is prefix-only).
  void EvictThrough(int64_t max_version);

  /// Lowest version still holding resident tuples (the spill victim), or
  /// kNoVersion when nothing is resident.
  int64_t ColdestResident() const;

  /// Spills the store at `version` (if present). Returns bytes released.
  size_t SpillAt(int64_t version);

  /// Accumulates this side's footprint into the operator's accounting:
  /// arena bytes, resident bytes, and the coldest resident version.
  void AddBytes(int64_t* arena_bytes, size_t* resident_bytes,
                int64_t* coldest_resident) const;

  size_t NumVersions() const { return stores_.size(); }

  /// Checkpointing: count-prefixed (version, store) pairs — the format the
  /// pre-arrangement operators wrote, so run files round-trip unchanged.
  void Serialize(spe::StateWriter* writer) const;
  Status Restore(spe::StateReader* reader);

 private:
  std::map<int64_t, TupleStore> stores_;
  storage::SpillSpace* spill_ = nullptr;
  storage::Compactor* compactor_ = nullptr;
  bool access_aware_ = false;
  /// version -> trigger reads since creation (pruned with eviction).
  std::map<int64_t, int64_t> reads_;
};

/// One joined tuple of a slice pair, with its combined CL-masked tag set.
struct JoinedTuple {
  spe::Row row;
  QuerySet tags;
};

/// Memo of joined slice pairs (versions a x b): each pair is joined exactly
/// once, ever; every query and window instance covering the pair reuses
/// the result. Derived state — never checkpointed, dropped on restore.
class JoinMemo {
 public:
  /// The memoized result for (a, b), or nullptr (counts a hit when found).
  const std::vector<JoinedTuple>* Find(int64_t a, int64_t b);

  /// Creates the (empty) entry for (a, b) to be filled by the caller
  /// (counts a miss).
  std::vector<JoinedTuple>& Emplace(int64_t a, int64_t b);

  /// Drops entries touching any version <= max_version.
  void EvictThrough(int64_t max_version);

  void Clear() { memo_.clear(); }
  size_t NumEntries() const { return memo_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  std::map<std::pair<int64_t, int64_t>, std::vector<JoinedTuple>> memo_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

/// Aggregation arrangement: slice index -> group-shared partials, plus a
/// composition memo so overlapping windows (and windows of different
/// queries over the same slices) reuse composed spans instead of
/// re-merging every slice per trigger.
///
/// Composition follows the canonical greedy aligned-block decomposition:
/// a span [i..last] is covered left to right by the largest
/// power-of-two-aligned blocks that fit; blocks of level >= 1 are memoized
/// by (level, base). Inside a block every group's tag set is masked to the
/// block's end via the CL table; when a block is merged into a wider span
/// the bridge mask Mask(span_end, block_end) is ANDed on top — by Eq. 1's
/// transitivity (Mask(L, s) == Mask(L, j) & Mask(j, s) for s <= j <= L)
/// the result is exactly the per-slice masking the pre-arrangement
/// operator computed, so outputs stay byte-identical.
///
/// Memo safety: a span is only composed for a trigger whose end is at or
/// below the watermark, and inserts carry event times at or above it, so
/// composed slices are frozen; CL masks between existing slices never
/// change. The memo is derived state: never checkpointed, dropped on
/// restore and released first under spill pressure.
class AggArrangement {
 public:
  using Group = AggStore::Group;
  /// Composed view of a span: key -> groups, tags masked to the span end.
  using Composed = std::map<spe::Value, std::vector<Group>>;

  static constexpr int64_t kNoVersion = TupleArrangement::kNoVersion;
  /// Blocks span at most 2^kMaxLevel slices; wider spans compose from
  /// several blocks. Bounds memo growth per trigger range.
  static constexpr int kMaxLevel = 6;

  void BindSpill(storage::SpillSpace* space) { spill_ = space; }

  /// See TupleArrangement.
  void BindCompactor(storage::Compactor* compactor) {
    compactor_ = compactor;
  }
  void SetAccessAware(bool on) { access_aware_ = on; }
  void NoteRead(int64_t version) {
    if (access_aware_) ++reads_[version];
  }
  int64_t PickVictim(int64_t* reads) const;

  /// Writer cursor: the store of `version`, created on first write.
  AggStore& StoreAt(int64_t version);

  /// Versioned read cursor: nullptr when the version holds no partials.
  const AggStore* AtVersion(int64_t version) const;

  /// Composes the span covered by `slices` (contiguous, ascending), with
  /// every group's tags masked to the last slice via `cl`. With `memoize`
  /// set, aligned sub-blocks are cached for reuse by later triggers.
  Composed Compose(const std::vector<SliceInfo>& slices, ClTable* cl,
                   bool memoize);

  /// Drops every version <= max_version and every memo block touching one.
  void EvictThrough(int64_t max_version);

  /// Drops the whole composition memo (spill pressure, restore). Returns
  /// the estimated bytes released.
  size_t ReleaseMemo();

  /// Lowest version still holding resident partials, or kNoVersion.
  int64_t ColdestResident() const;
  size_t SpillAt(int64_t version);
  void AddBytes(int64_t* arena_bytes, size_t* resident_bytes,
                int64_t* coldest_resident) const;

  size_t NumVersions() const { return stores_.size(); }
  int64_t memo_hits() const { return memo_hits_; }
  int64_t memo_misses() const { return memo_misses_; }
  size_t memo_bytes() const { return memo_bytes_; }
  size_t memo_blocks() const { return memo_.size(); }

  /// Checkpointing: stores only (same wire format as the pre-arrangement
  /// operator); the memo is rebuilt on demand.
  void Serialize(spe::StateWriter* writer) const;
  Status Restore(spe::StateReader* reader);

 private:
  using BlockKey = std::pair<int, int64_t>;  // (level, base)

  /// The composed block [base, base + 2^level), masked to its last slice.
  std::shared_ptr<const Composed> Block(int level, int64_t base, ClTable* cl,
                                        bool memoize);

  std::map<int64_t, AggStore> stores_;
  std::map<BlockKey, std::shared_ptr<const Composed>> memo_;
  int64_t memo_hits_ = 0;
  int64_t memo_misses_ = 0;
  size_t memo_bytes_ = 0;
  storage::SpillSpace* spill_ = nullptr;
  storage::Compactor* compactor_ = nullptr;
  bool access_aware_ = false;
  std::map<int64_t, int64_t> reads_;
};

}  // namespace astream::core

#endif  // ASTREAM_CORE_ARRANGEMENT_H_
