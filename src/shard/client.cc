#include "shard/client.h"

#include <utility>

namespace astream {

Result<std::unique_ptr<Client>> Client::Create(JobConfig config) {
  Result<JobConfig> validated = JobConfig::Validated(std::move(config));
  ASTREAM_RETURN_IF_ERROR(validated.status());
  Result<std::unique_ptr<shard::ShardRouter>> router =
      shard::ShardRouter::Create(*validated);
  ASTREAM_RETURN_IF_ERROR(router.status());
  return std::unique_ptr<Client>(new Client(std::move(validated).value(),
                                            std::move(router).value()));
}

}  // namespace astream
