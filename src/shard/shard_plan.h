#ifndef ASTREAM_SHARD_SHARD_PLAN_H_
#define ASTREAM_SHARD_SHARD_PLAN_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "spe/row.h"

namespace astream::shard {

/// Finalizer-quality 64-bit mix (splitmix64): key -> slot hashing must be
/// independent of both the shard count and the engine's internal
/// InstanceForKey partitioning, so resharding never re-hashes keys — only
/// slot ownership moves.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Immutable hash-slot ownership table: a key hashes to one of
/// `num_slots()` slots (stable for the lifetime of the deployment), each
/// slot is owned by exactly one shard. Live resharding publishes a new
/// plan (bumped version) that reassigns some slots; readers hold a
/// shared_ptr snapshot, so routing and egress filtering are wait-free.
struct ShardPlan {
  /// Monotonic plan version; bumped by every reshard.
  int64_t version = 1;
  /// slot index -> owning shard index.
  std::vector<int> owner;

  int num_slots() const { return static_cast<int>(owner.size()); }

  int num_shards() const {
    int n = 0;
    for (int s : owner) n = s >= n ? s + 1 : n;
    return n;
  }

  static int SlotOfKey(spe::Value key, int num_slots) {
    return static_cast<int>(SplitMix64(static_cast<uint64_t>(key)) %
                            static_cast<uint64_t>(num_slots));
  }

  int OwnerOfKey(spe::Value key) const {
    return owner[SlotOfKey(key, num_slots())];
  }

  /// Round-robin slot assignment across `shards` (slot i -> i % shards):
  /// every shard owns ~slots/shards slots from the start.
  static ShardPlan Uniform(int shards, int slots) {
    assert(shards >= 1 && slots >= shards);
    ShardPlan plan;
    plan.owner.resize(static_cast<size_t>(slots));
    for (int i = 0; i < slots; ++i) plan.owner[i] = i % shards;
    return plan;
  }

  std::vector<int> SlotsOwnedBy(int shard) const {
    std::vector<int> slots;
    for (int i = 0; i < num_slots(); ++i) {
      if (owner[i] == shard) slots.push_back(i);
    }
    return slots;
  }

  /// New plan with every slot of `from` moved to `to` (shard migration;
  /// `to` may be a brand-new index, growing the deployment).
  ShardPlan Moved(int from, int to) const {
    ShardPlan next = *this;
    next.version = version + 1;
    for (int& s : next.owner) {
      if (s == from) s = to;
    }
    return next;
  }

  /// New plan splitting `shard`'s slots: every second owned slot moves to
  /// `new_shard`, halving the key range while keeping both halves
  /// non-empty for any owned-slot count >= 2.
  ShardPlan Split(int shard, int new_shard) const {
    ShardPlan next = *this;
    next.version = version + 1;
    int nth = 0;
    for (int& s : next.owner) {
      if (s != shard) continue;
      if (nth++ % 2 == 1) s = new_shard;
    }
    return next;
  }
};

}  // namespace astream::shard

#endif  // ASTREAM_SHARD_SHARD_PLAN_H_
