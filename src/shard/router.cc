#include "shard/router.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/logging.h"

namespace astream::shard {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardRouter::ShardRouter(JobConfig config)
    : config_(std::move(config)),
      clock_(config_.job.clock != nullptr ? config_.job.clock
                                          : WallClock::Default()),
      admission_(config_.job.slo),
      router_metrics_(config_.job.enable_metrics) {
  plan_.store(std::make_shared<const ShardPlan>(
      ShardPlan::Uniform(config_.shards, config_.slots)));
  generations_.assign(static_cast<size_t>(config_.shards), 0);
}

ShardRouter::~ShardRouter() { Stop(); }

Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(JobConfig config) {
  ASTREAM_ASSIGN_OR_RETURN(config, JobConfig::Validated(std::move(config)));
  return std::unique_ptr<ShardRouter>(new ShardRouter(std::move(config)));
}

Status ShardRouter::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  for (int i = 0; i < config_.shards; ++i) {
    auto runtime = MakeRuntime(i, 0, nullptr);
    ASTREAM_RETURN_IF_ERROR(runtime->Start());
    InstallCallback(runtime.get(), i);
    shards_.push_back(std::move(runtime));
  }
  started_ = true;
  return Status::OK();
}

std::unique_ptr<ShardRuntime> ShardRouter::MakeRuntime(
    int index, int generation,
    std::shared_ptr<const spe::CheckpointStore::Checkpoint> restore_from) {
  ShardRuntime::Options opts;
  opts.index = index;
  opts.generation = generation;
  opts.config = config_;
  // Admission is enforced once, at the router: a shard-local gate could
  // reject on one shard and admit on another, leaving the deployment
  // half-registered. Per-query cost metering stays on in the shards (the
  // merged snapshot carries the series).
  opts.config.job.slo = core::SloOptions{};
  opts.restore_from = std::move(restore_from);
  return std::make_unique<ShardRuntime>(std::move(opts));
}

void ShardRouter::InstallCallback(ShardRuntime* runtime, int index) {
  runtime->SetResultCallback(
      [this, index](core::QueryId id, const spe::Record& r) {
        Deliver(index, id, r);
      });
}

void ShardRouter::Deliver(int shard_index, core::QueryId id,
                          const spe::Record& r) {
  // Ownership filter: every emitted row is keyed by column 0 (selections
  // pass the input row, joins emit the A side first, aggregations emit
  // Row{key, value}), so the key's current slot owner is the one shard
  // allowed to deliver it. After a split, both halves hold the full
  // pre-split state and both re-emit surviving windows — the filter keeps
  // exactly the owner's copy, which is what makes the merged output
  // byte-identical to an unsharded run.
  const std::shared_ptr<const ShardPlan> plan = plan_.load();
  if (plan->OwnerOfKey(r.row.key()) != shard_index) return;
  qos_.RecordOutput(id, r.event_time, clock_->NowMs());
  core::AStreamJob::ResultCallback cb;
  {
    std::lock_guard<std::mutex> lock(cb_mu_);
    cb = user_callback_;
  }
  if (cb) cb(id, r);
}

core::PushResult ShardRouter::Push(StreamId stream, TimestampMs event_time,
                                   spe::Row row) {
  if (!started_) return core::PushResult::kShutdown;
  const std::shared_ptr<const ShardPlan> plan = plan_.load();
  const int owner = plan->OwnerOfKey(row.key());
  return shards_[static_cast<size_t>(owner)]->Push(stream, event_time,
                                                   std::move(row));
}

void ShardRouter::PushWatermark(TimestampMs watermark) {
  if (!started_) return;
  for (auto& shard : shards_) shard->PushWatermark(watermark);
}

Result<core::QueryId> ShardRouter::Submit(
    const core::QueryDescriptor& desc) {
  if (!started_) return Status::FailedPrecondition("router not started");
  {
    std::lock_guard<std::mutex> lock(poison_mu_);
    ASTREAM_RETURN_IF_ERROR(poisoned_);
  }
  if (admission_.enabled()) {
    const int64_t p99 =
        qos_.TakeSnapshot().event_time_latency.Percentile(99);
    const core::AdmissionController::Decision d = admission_.Decide(
        desc, /*num_queued=*/0, static_cast<double>(p99));
    if (d.action != core::AdmissionDecision::kAdmitted) {
      // Reject-only at the router (no deployment-wide queue): a decision
      // the single-job gate would merely defer is refused here.
      if (router_metrics_.enabled()) {
        router_metrics_.GetCounter("admission.rejected")->Add();
      }
      return Status::AdmissionRejected(d.reason);
    }
  }
  QuiesceAll();
  std::vector<std::pair<int, core::QueryId>> applied;
  core::QueryId first_id = -1;
  Status failure = Status::OK();
  for (int i = 0; i < num_shards(); ++i) {
    Result<core::QueryId> id = shards_[static_cast<size_t>(i)]->Submit(desc);
    if (!id.ok()) {
      failure = id.status();
      break;
    }
    applied.emplace_back(i, *id);
    if (i == 0) {
      first_id = *id;
    } else if (*id != first_id) {
      // Same descriptor stream on deterministic sessions must assign the
      // same id everywhere; divergence means the shards' query registries
      // are out of sync — refuse and undo.
      failure = Status::Internal(
          "shard " + std::to_string(i) + " assigned query id " +
          std::to_string(*id) + ", shard 0 assigned " +
          std::to_string(first_id));
      break;
    }
  }
  if (failure.ok()) {
    admission_.OnAdmitted(first_id, desc);
    return first_id;
  }
  // Roll back every shard that accepted: the creation is still pending in
  // its session batch (the fan-out flushes nothing), so Cancel drops it
  // without a trace. A failed rollback leaves registries diverged — the
  // router is poisoned rather than half-registered.
  for (const auto& [idx, id] : applied) {
    const Status undo = shards_[static_cast<size_t>(idx)]->Cancel(id);
    if (!undo.ok()) {
      Poison(Status::Internal("submit rollback failed on shard " +
                              std::to_string(idx) + ": " +
                              undo.ToString()));
    }
  }
  return failure;
}

Status ShardRouter::Cancel(core::QueryId id) {
  if (!started_) return Status::FailedPrecondition("router not started");
  {
    std::lock_guard<std::mutex> lock(poison_mu_);
    ASTREAM_RETURN_IF_ERROR(poisoned_);
  }
  QuiesceAll();
  for (int i = 0; i < num_shards(); ++i) {
    const Status s = shards_[static_cast<size_t>(i)]->Cancel(id);
    if (s.ok()) continue;
    if (i == 0) return s;  // validation failure; nothing applied anywhere
    // A cancellation already buffered on earlier shards cannot be
    // withdrawn; diverging here poisons the deployment.
    const Status poison = Status::Internal(
        "cancel(" + std::to_string(id) + ") diverged on shard " +
        std::to_string(i) + ": " + s.ToString());
    Poison(poison);
    return poison;
  }
  admission_.OnCancelled(id);
  return Status::OK();
}

int ShardRouter::Pump(bool force) {
  if (!started_) return 0;
  QuiesceAll();
  int pumped = 0;
  for (int i = 0; i < num_shards(); ++i) {
    const int n = shards_[static_cast<size_t>(i)]->Pump(force);
    if (i == 0) pumped = n;
  }
  return pumped;
}

bool ShardRouter::WaitForDeployment(TimestampMs timeout_ms) {
  if (!started_) return false;
  bool ok = true;
  for (auto& shard : shards_) ok &= shard->WaitForDeployment(timeout_ms);
  return ok;
}

Status ShardRouter::Checkpoint() {
  if (!started_) return Status::FailedPrecondition("router not started");
  QuiesceAll();
  for (int i = 0; i < num_shards(); ++i) {
    if (shards_[static_cast<size_t>(i)]->CheckpointAndWait() == nullptr) {
      return Status::Internal("checkpoint failed on shard " +
                              std::to_string(i));
    }
  }
  return Status::OK();
}

Status ShardRouter::MoveShard(int shard) {
  if (!started_) return Status::FailedPrecondition("router not started");
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  const int64_t t0 = SteadyNowMs();
  auto cp = shards_[static_cast<size_t>(shard)]->DrainToCheckpoint();
  if (cp == nullptr) {
    return Status::Internal("drain of shard " + std::to_string(shard) +
                            " failed");
  }
  auto runtime =
      MakeRuntime(shard, ++generations_[static_cast<size_t>(shard)], cp);
  ASTREAM_RETURN_IF_ERROR(runtime->Start());
  InstallCallback(runtime.get(), shard);
  shards_[static_cast<size_t>(shard)] = std::move(runtime);
  // Ownership is unchanged; the version bump records the migration.
  const std::shared_ptr<const ShardPlan> plan = plan_.load();
  plan_.store(
      std::make_shared<const ShardPlan>(plan->Moved(shard, shard)));
  last_reshard_pause_ms_.store(SteadyNowMs() - t0,
                               std::memory_order_relaxed);
  return Status::OK();
}

Status ShardRouter::SplitShard(int shard) {
  if (!started_) return Status::FailedPrecondition("router not started");
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  {
    const std::shared_ptr<const ShardPlan> plan = plan_.load();
    if (plan->SlotsOwnedBy(shard).size() < 2) {
      return Status::FailedPrecondition(
          "shard owns fewer than 2 slots; nothing to split");
    }
  }
  const int64_t t0 = SteadyNowMs();
  const int new_shard = num_shards();
  auto cp = shards_[static_cast<size_t>(shard)]->DrainToCheckpoint();
  if (cp == nullptr) {
    return Status::Internal("drain of shard " + std::to_string(shard) +
                            " failed");
  }
  // Both halves restore the FULL pre-split state; the new plan (published
  // before either can emit) makes the egress filter partition their
  // emissions exactly.
  auto left =
      MakeRuntime(shard, ++generations_[static_cast<size_t>(shard)], cp);
  generations_.push_back(0);
  auto right = MakeRuntime(new_shard, 0, cp);
  const std::shared_ptr<const ShardPlan> plan = plan_.load();
  plan_.store(
      std::make_shared<const ShardPlan>(plan->Split(shard, new_shard)));
  ASTREAM_RETURN_IF_ERROR(left->Start());
  ASTREAM_RETURN_IF_ERROR(right->Start());
  InstallCallback(left.get(), shard);
  InstallCallback(right.get(), new_shard);
  shards_[static_cast<size_t>(shard)] = std::move(left);
  shards_.push_back(std::move(right));
  last_reshard_pause_ms_.store(SteadyNowMs() - t0,
                               std::memory_order_relaxed);
  return Status::OK();
}

Status ShardRouter::KillShard(int shard, const Status& why) {
  if (!started_) return Status::FailedPrecondition("router not started");
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  if (!config_.job.threaded) {
    return Status::FailedPrecondition(
        "sync engines cannot fail asynchronously; kill requires "
        "job.threaded");
  }
  // Quiesce first so the crash point is deterministic against the control
  // timeline: everything pushed before the kill is applied by the dying
  // incarnation (and thus covered by its source log), everything after is
  // first seen by the recovered one.
  QuiesceAll();
  shards_[static_cast<size_t>(shard)]->Kill(why);
  return Status::OK();
}

Status ShardRouter::FinishAndWait() {
  if (!started_) return Status::OK();
  Status first = Status::OK();
  for (auto& shard : shards_) {
    const Status s = shard->FinishAndWait();
    if (first.ok()) first = s;
  }
  {
    std::lock_guard<std::mutex> lock(poison_mu_);
    if (first.ok()) first = poisoned_;
  }
  return first;
}

Status ShardRouter::Stop() {
  Status first = Status::OK();
  for (auto& shard : shards_) {
    const Status s = shard->Stop();
    if (first.ok()) first = s;
  }
  return first;
}

Status ShardRouter::Health() const {
  {
    std::lock_guard<std::mutex> lock(poison_mu_);
    ASTREAM_RETURN_IF_ERROR(poisoned_);
  }
  for (const auto& shard : shards_) {
    ASTREAM_RETURN_IF_ERROR(shard->Health());
  }
  return Status::OK();
}

void ShardRouter::SetResultCallback(
    core::AStreamJob::ResultCallback callback) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  user_callback_ = std::move(callback);
}

obs::MetricsRegistry::Snapshot ShardRouter::MetricsSnapshot() {
  std::vector<obs::MetricsRegistry::Snapshot> snapshots;
  snapshots.reserve(shards_.size() + 1);
  for (auto& shard : shards_) snapshots.push_back(shard->MetricsSnapshot());
  if (router_metrics_.enabled() && admission_.enabled()) {
    router_metrics_.GetGauge("admission.active_queries")
        ->Set(static_cast<int64_t>(admission_.num_admitted()));
    snapshots.push_back(router_metrics_.TakeSnapshot());
  }
  return obs::MergeSnapshots(snapshots);
}

core::QosMonitor::Snapshot ShardRouter::QosSnapshot() {
  // Outputs come from the router's own monitor (recorded post-filter);
  // deployment latency comes from shard 0 — every shard acks the same
  // changelog timeline, so shard 0 speaks for the deployment and summing
  // would count each deployment N times.
  core::QosMonitor::Snapshot merged = qos_.TakeSnapshot();
  if (!shards_.empty()) {
    core::QosMonitor::Snapshot s0 = shards_[0]->QosSnapshot();
    merged.deployment_latency = s0.deployment_latency;
    merged.deployment_events = std::move(s0.deployment_events);
  }
  return merged;
}

core::AStreamJob::OperatorStats ShardRouter::CollectStats() const {
  core::AStreamJob::OperatorStats total;
  for (const auto& shard : shards_) {
    const core::AStreamJob::OperatorStats s = shard->CollectStats();
    total.queryset_nanos += s.queryset_nanos;
    total.fanout_nanos += s.fanout_nanos;
    total.bitset_ops += s.bitset_ops;
    total.join_pairs_computed += s.join_pairs_computed;
    total.join_pairs_reused += s.join_pairs_reused;
    total.records_late += s.records_late;
    total.selection_records_in += s.selection_records_in;
    total.selection_records_out += s.selection_records_out;
    total.router_records_out += s.router_records_out;
    total.router_rows_shared += s.router_rows_shared;
    total.router_rows_copied += s.router_rows_copied;
    total.state_arena_bytes += s.state_arena_bytes;
  }
  return total;
}

void ShardRouter::QuiesceAll() {
  // Barrier before any control fan-out: with every ring drained, no pump
  // thread is mid-recovery (a supervised replay pins the clock to logged
  // times), so the shards all observe the same "now" when they stamp and
  // flush the control operation.
  for (auto& shard : shards_) shard->QuiesceIngress();
}

void ShardRouter::Poison(const Status& status) {
  std::lock_guard<std::mutex> lock(poison_mu_);
  if (poisoned_.ok()) poisoned_ = status;
  ASTREAM_LOG(kWarn, "shard-router") << "poisoned: " << status.ToString();
}

}  // namespace astream::shard
