#ifndef ASTREAM_SHARD_ROUTER_H_
#define ASTREAM_SHARD_ROUTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "shard/shard_plan.h"
#include "shard/shard_runtime.h"

namespace astream::shard {

/// Hash-partitioning ingress over N per-shard AStream runtimes: rows
/// route by key through the shard plan, watermarks broadcast, and
/// Submit/Cancel fan out to every shard — each shard's deterministic
/// session assigns the same query id, which the router asserts, so one
/// logical query exists on all shards under one id. Per-query outputs
/// merge into a single callback, filtered by current slot ownership (so a
/// freshly split shard pair, both restored from the full pre-split state,
/// emits every result exactly once). Metrics/QoS/operator stats merge
/// into one deployment-wide view.
///
/// Live resharding: MoveShard drains a shard to a (durably persistable)
/// checkpoint and rebuilds it; SplitShard drains one shard and restores
/// the checkpoint on TWO shards while the plan splits the slot range. The
/// remaining shards keep draining their ingress rings throughout; the
/// measured control-thread pause is reported via last_reshard_pause_ms().
///
/// Single control thread, like AStreamJob. Result callbacks arrive on
/// shard sink threads in threaded mode.
class ShardRouter {
 public:
  static Result<std::unique_ptr<ShardRouter>> Create(JobConfig config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  Status Start();

  core::PushResult Push(StreamId stream, TimestampMs event_time,
                        spe::Row row);
  void PushWatermark(TimestampMs watermark);

  /// Fans out to all shards. On a partial failure every already-applied
  /// shard is rolled back (the pending creation is dropped from its
  /// session batch) and ONE coherent status comes back — a query is never
  /// left half-registered. Divergent id assignment across shards is a
  /// consistency violation: rolled back and reported as Internal.
  ///
  /// With config.job.slo.enable_admission the router gates the fan-out
  /// through its own deployment-wide admission controller — reject-only
  /// (kAdmissionRejected): queueing would need a deployment-wide drain
  /// protocol, a documented single-job-only feature. Shards themselves
  /// run with admission stripped so the gate cannot double-fire.
  Result<core::QueryId> Submit(const core::QueryDescriptor& desc);
  /// Fans out to all shards. A validation failure on the first shard
  /// rejects cleanly (nothing applied anywhere); a divergent failure on a
  /// later shard poisons the router (Health() turns non-OK) because a
  /// buffered cancellation cannot be withdrawn.
  Status Cancel(core::QueryId id);

  int Pump(bool force = false);
  bool WaitForDeployment(TimestampMs timeout_ms = 10'000);

  /// Checkpoints every shard and waits for completion.
  Status Checkpoint();

  /// Drains `shard` to a checkpoint and rebuilds it (new generation,
  /// restored from the hand-off checkpoint). Ownership is unchanged.
  Status MoveShard(int shard);
  /// Drains `shard`, restores its checkpoint on itself AND a brand-new
  /// shard, and publishes a plan that splits the slot range between the
  /// two. Requires the shard to own >= 2 slots.
  Status SplitShard(int shard);
  /// Control-thread stall of the last Move/SplitShard, in wall ms.
  int64_t last_reshard_pause_ms() const {
    return last_reshard_pause_ms_.load(std::memory_order_relaxed);
  }

  /// Chaos hook: kill one shard's engine as a crash would.
  Status KillShard(int shard, const Status& why);

  Status FinishAndWait();
  Status Stop();
  Status Health() const;

  void SetResultCallback(core::AStreamJob::ResultCallback callback);

  /// Deployment-wide views.
  obs::MetricsRegistry::Snapshot MetricsSnapshot();
  core::QosMonitor::Snapshot QosSnapshot();
  core::AStreamJob::OperatorStats CollectStats() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::shared_ptr<const ShardPlan> plan() const { return plan_.load(); }
  /// Test access to one shard runtime.
  ShardRuntime* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }

 private:
  explicit ShardRouter(JobConfig config);

  std::unique_ptr<ShardRuntime> MakeRuntime(
      int index, int generation,
      std::shared_ptr<const spe::CheckpointStore::Checkpoint> restore_from);
  /// Installs the merged, ownership-filtered result callback on a shard.
  void InstallCallback(ShardRuntime* runtime, int index);
  void Deliver(int shard_index, core::QueryId id, const spe::Record& r);
  /// Drains every shard's ingress ring before a control fan-out so all
  /// shards stamp the operation at one consistent wall time.
  void QuiesceAll();
  void Poison(const Status& status);

  JobConfig config_;
  Clock* clock_;
  /// Deployment-wide admission gate (reject-only; see Submit). Counters
  /// land in router_metrics_, merged into MetricsSnapshot().
  core::AdmissionController admission_;
  obs::MetricsRegistry router_metrics_;
  std::vector<std::unique_ptr<ShardRuntime>> shards_;
  /// Bumped per index on every rebuild (durable dir uniqueness).
  std::vector<int> generations_;
  /// Snapshot-swapped ownership table; sink threads load it wait-free.
  std::atomic<std::shared_ptr<const ShardPlan>> plan_;

  /// Router-level QoS: outputs recorded post-filter (per-shard monitors
  /// would double-count results suppressed by the ownership filter).
  core::QosMonitor qos_;

  std::mutex cb_mu_;
  core::AStreamJob::ResultCallback user_callback_;

  mutable std::mutex poison_mu_;
  Status poisoned_ = Status::OK();

  std::atomic<int64_t> last_reshard_pause_ms_{0};
  bool started_ = false;
};

}  // namespace astream::shard

#endif  // ASTREAM_SHARD_ROUTER_H_
