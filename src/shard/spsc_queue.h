#ifndef ASTREAM_SHARD_SPSC_QUEUE_H_
#define ASTREAM_SHARD_SPSC_QUEUE_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace astream::shard {

/// Generic single-producer/single-consumer ring for shard ingress: the
/// control thread enqueues, one pump thread drains. Same discipline as
/// spe::SpscRing (power-of-two slots, acquire/release index pair, cached
/// opposite index on a separate cache line, spin-then-park on both sides
/// with bounded 1 ms waits so a lost wakeup costs a millisecond, never a
/// hang) — this is what retires the mutex MPMC Channel from the external
/// push path.
///
/// Close() wins over full: a producer parked on a full ring observes the
/// close and gives up; the consumer drains whatever was published before
/// reporting closed.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer. False when the ring is full or closed.
  bool TryPush(T&& item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    MaybeWake(&consumer_parked_);
    return true;
  }

  /// Producer. Blocks (spin, then park) until space; false when closed.
  bool Push(T item) {
    for (int spin = 0; spin < 256; ++spin) {
      if (TryPush(std::move(item))) return true;
      if (closed_.load(std::memory_order_acquire)) return false;
    }
    std::unique_lock<std::mutex> lock(park_mu_);
    while (true) {
      if (TryPush(std::move(item))) return true;
      if (closed_.load(std::memory_order_acquire)) return false;
      producer_parked_.store(true, std::memory_order_release);
      park_cv_.wait_for(lock, std::chrono::milliseconds(1));
      producer_parked_.store(false, std::memory_order_release);
    }
  }

  /// Consumer. False when empty (closed or not).
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    MaybeWake(&producer_parked_);
    return true;
  }

  /// Consumer. Blocks until an item arrives or the ring is closed AND
  /// drained (then false — the shutdown signal).
  bool Pop(T* out) {
    for (int spin = 0; spin < 256; ++spin) {
      if (TryPop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check after observing close: items published before the
        // close must still drain.
        return TryPop(out);
      }
    }
    std::unique_lock<std::mutex> lock(park_mu_);
    while (true) {
      if (TryPop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) return TryPop(out);
      consumer_parked_.store(true, std::memory_order_release);
      park_cv_.wait_for(lock, std::chrono::milliseconds(1));
      consumer_parked_.store(false, std::memory_order_release);
    }
  }

  void Close() {
    closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy (either thread; racy by design).
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  size_t capacity() const { return capacity_; }

 private:
  void MaybeWake(const std::atomic<bool>* parked) {
    // Deliberately lock-free: Push/Pop's parked loops invoke Try* while
    // already holding park_mu_, so taking it here would self-deadlock.
    // Waiters only ever block in bounded 1 ms wait_for calls, so a
    // notify that races a waiter between its check and its wait costs
    // one extra wait round, never a hang.
    if (!parked->load(std::memory_order_acquire)) return;
    park_cv_.notify_all();
  }

  const size_t capacity_;
  const size_t mask_;
  std::vector<T> slots_;

  alignas(64) std::atomic<uint64_t> tail_{0};  // producer-owned
  alignas(64) uint64_t head_cache_ = 0;        // producer's view of head
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer-owned
  alignas(64) uint64_t tail_cache_ = 0;        // consumer's view of tail
  alignas(64) std::atomic<bool> closed_{false};

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<bool> producer_parked_{false};
  std::atomic<bool> consumer_parked_{false};
};

}  // namespace astream::shard

#endif  // ASTREAM_SHARD_SPSC_QUEUE_H_
