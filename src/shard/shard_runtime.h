#ifndef ASTREAM_SHARD_SHARD_RUNTIME_H_
#define ASTREAM_SHARD_SHARD_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/job_config.h"
#include "harness/supervised_job.h"
#include "shard/spsc_queue.h"

namespace astream::shard {

/// One shard of a sharded deployment: an AStreamJob — plain, or wrapped
/// in a harness::SupervisedJob for crash recovery — plus, in threaded
/// router mode, a lock-free SPSC ingress ring drained by a dedicated pump
/// thread (the control thread never takes a channel mutex to push).
///
/// Threading contract mirrors AStreamJob: all control-plane calls
/// (Submit/Cancel/Pump/Checkpoint/Drain/Stop) come from ONE control
/// thread. In threaded mode they quiesce the ingress ring first, so the
/// shard observes data and control in exactly the order the control
/// thread issued them.
class ShardRuntime {
 public:
  struct Options {
    /// Shard index in the router's table (stable across migrations).
    int index = 0;
    /// Hand-off generation: bumped each time this index is rebuilt by a
    /// reshard, so durable checkpoint directories never collide.
    int generation = 0;
    /// The validated deployment config (per-shard engine options live in
    /// config.job; this runtime derives its durable dir from state_dir).
    JobConfig config;
    /// Non-null: restore this shard from a checkpoint drained elsewhere.
    std::shared_ptr<const spe::CheckpointStore::Checkpoint> restore_from;
  };

  explicit ShardRuntime(Options options);
  ~ShardRuntime();

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  Status Start();

  /// Data plane. Threaded mode: enqueue onto the SPSC ring (blocking when
  /// full) and report kAccepted — acknowledgement is asynchronous, late
  /// clamps are absorbed by the shard. Inline mode: applied synchronously
  /// with the engine's exact result.
  core::PushResult Push(StreamId stream, TimestampMs t, spe::Row row);
  void PushWatermark(TimestampMs wm);

  /// Drains the ingress ring (threaded mode; no-op inline). The router
  /// quiesces EVERY shard before a control fan-out: pump threads can run
  /// supervised recoveries that pin the clock to replay times, and the
  /// fan-out must stamp one consistent wall time across all shards.
  void QuiesceIngress() { Quiesce(); }

  /// Control plane (quiesces the ring first in threaded mode).
  Result<core::QueryId> Submit(const core::QueryDescriptor& desc);
  Status Cancel(core::QueryId id);
  int Pump(bool force);
  bool WaitForDeployment(TimestampMs timeout_ms);

  /// Triggers a checkpoint and blocks until it is complete in the store
  /// (threaded engines complete asynchronously). Returns the completed
  /// checkpoint, or nullptr on failure/timeout.
  std::shared_ptr<const spe::CheckpointStore::Checkpoint>
  CheckpointAndWait();

  /// Live-resharding drain: quiesce all in-flight input, checkpoint, wait
  /// for completion, then stop the shard. The returned checkpoint is the
  /// shard's complete state for hand-off to the new owner(s).
  std::shared_ptr<const spe::CheckpointStore::Checkpoint>
  DrainToCheckpoint();

  Status FinishAndWait();
  Status Stop();

  Status Health() const;
  bool Failed() const;
  /// Chaos hook: declare the shard's current job incarnation failed, as a
  /// crashed process would (threaded engines only — the sync runner
  /// cannot fail asynchronously). Supervised shards recover on their next
  /// operation, replaying from the last checkpoint.
  void Kill(const Status& why);

  void SetResultCallback(core::AStreamJob::ResultCallback callback);

  /// Current engine incarnation (supervised shards swap it on recovery).
  core::AStreamJob* job();
  const core::AStreamJob* job() const;
  harness::SupervisedJob* supervised() { return supervised_.get(); }

  obs::MetricsRegistry::Snapshot MetricsSnapshot();
  core::QosMonitor::Snapshot QosSnapshot();
  core::AStreamJob::OperatorStats CollectStats() const;

  int index() const { return options_.index; }
  int generation() const { return options_.generation; }
  /// Data items enqueued/applied (threaded mode; equal when quiescent).
  int64_t enqueued() const {
    return enqueued_.load(std::memory_order_relaxed);
  }

 private:
  struct Ingress {
    int stream = 0;  // 0 = A, 1 = B, -1 = watermark
    TimestampMs time = 0;
    spe::Row row;
  };

  void PumpLoop();
  /// Waits until every enqueued ingress item has been applied.
  void Quiesce();
  core::PushResult ApplyPush(int stream, TimestampMs t, spe::Row row);
  void ApplyWatermark(TimestampMs wm);
  void CloseRing();

  Options options_;
  // Exactly one of the two is set (supervised flag in the config).
  std::unique_ptr<harness::SupervisedJob> supervised_;
  std::unique_ptr<core::AStreamJob> plain_;

  std::unique_ptr<SpscQueue<Ingress>> ring_;
  std::thread pump_;
  std::atomic<int64_t> enqueued_{0};
  std::atomic<int64_t> applied_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace astream::shard

#endif  // ASTREAM_SHARD_SHARD_RUNTIME_H_
