#include "shard/shard_runtime.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace astream::shard {

namespace {

constexpr int64_t kCheckpointWaitMs = 10'000;

std::string DurableDirFor(const JobConfig& config, int index,
                          int generation) {
  if (config.state_dir.empty()) return "";
  return config.state_dir + "/shard-" + std::to_string(index) + ".g" +
         std::to_string(generation);
}

}  // namespace

ShardRuntime::ShardRuntime(Options options)
    : options_(std::move(options)) {}

ShardRuntime::~ShardRuntime() { Stop(); }

Status ShardRuntime::Start() {
  if (started_) return Status::FailedPrecondition("shard already started");
  const JobConfig& config = options_.config;
  if (config.supervised) {
    harness::SupervisedJob::Options opts;
    opts.job = config.job;
    opts.supervisor = config.supervisor;
    opts.start_watchdog = config.start_watchdog;
    opts.pin_clock = config.pin_clock;
    opts.durable_checkpoint_dir =
        DurableDirFor(config, options_.index, options_.generation);
    opts.restore_from = options_.restore_from;
    supervised_ = std::make_unique<harness::SupervisedJob>(std::move(opts));
    ASTREAM_RETURN_IF_ERROR(supervised_->Start());
  } else {
    ASTREAM_ASSIGN_OR_RETURN(plain_, core::AStreamJob::Create(config.job));
    ASTREAM_RETURN_IF_ERROR(plain_->Start());
    if (options_.restore_from != nullptr) {
      ASTREAM_RETURN_IF_ERROR(plain_->RestoreFrom(*options_.restore_from));
    }
  }
  if (config.shard_threads) {
    ring_ = std::make_unique<SpscQueue<Ingress>>(config.ingress_capacity);
    pump_ = std::thread([this] { PumpLoop(); });
  }
  started_ = true;
  return Status::OK();
}

core::PushResult ShardRuntime::Push(StreamId stream, TimestampMs t,
                                    spe::Row row) {
  if (!started_ || stopped_) return core::PushResult::kShutdown;
  if (ring_ == nullptr) {
    return ApplyPush(static_cast<int>(stream), t, std::move(row));
  }
  Ingress item;
  item.stream = static_cast<int>(stream);
  item.time = t;
  item.row = std::move(row);
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (!ring_->Push(std::move(item))) {
    enqueued_.fetch_sub(1, std::memory_order_relaxed);
    return core::PushResult::kShutdown;
  }
  // Asynchronous ack: the pump applies it in order; late clamps and
  // backpressure are absorbed shard-side.
  return core::PushResult::kAccepted;
}

void ShardRuntime::PushWatermark(TimestampMs wm) {
  if (!started_ || stopped_) return;
  if (ring_ == nullptr) {
    ApplyWatermark(wm);
    return;
  }
  Ingress item;
  item.stream = -1;
  item.time = wm;
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (!ring_->Push(std::move(item))) {
    enqueued_.fetch_sub(1, std::memory_order_relaxed);
  }
}

Result<core::QueryId> ShardRuntime::Submit(
    const core::QueryDescriptor& desc) {
  Quiesce();
  if (supervised_ != nullptr) return supervised_->Submit(desc);
  return plain_->Submit(desc);
}

Status ShardRuntime::Cancel(core::QueryId id) {
  Quiesce();
  if (supervised_ != nullptr) return supervised_->Cancel(id);
  return plain_->Cancel(id);
}

int ShardRuntime::Pump(bool force) {
  Quiesce();
  // Supervised shards flush changelogs only at Submit/Cancel boundaries
  // (SupervisedJob pumps there itself): replay reproduces exactly those
  // flush points, so an extra unlogged flush here would diverge.
  if (supervised_ != nullptr) return 0;
  return plain_->Pump(force);
}

bool ShardRuntime::WaitForDeployment(TimestampMs timeout_ms) {
  Quiesce();
  return job()->WaitForDeployment(timeout_ms);
}

std::shared_ptr<const spe::CheckpointStore::Checkpoint>
ShardRuntime::CheckpointAndWait() {
  Quiesce();
  spe::CheckpointStore* store = nullptr;
  int64_t id = -1;
  if (supervised_ != nullptr) {
    id = supervised_->Checkpoint();
    store = &supervised_->checkpoints();
  } else {
    if (plain_->Failed()) return nullptr;
    id = plain_->TriggerCheckpoint({{0, 0}}, 0);
    store = &plain_->checkpoints();
  }
  if (id < 0) return nullptr;
  // Threaded engines complete barriers asynchronously on task threads;
  // sync engines complete before TriggerCheckpoint returns.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kCheckpointWaitMs);
  while (std::chrono::steady_clock::now() < deadline) {
    auto cp = store->Get(id);
    if (cp != nullptr && cp->complete) return cp;
    if (supervised_ != nullptr && job()->Failed()) {
      // The engine died mid-barrier. Taking another supervised checkpoint
      // recovers the job and replays the log, re-triggering the logged
      // barrier `id` with its original id — so it still completes.
      if (supervised_->Checkpoint() < 0) return nullptr;
    } else if (supervised_ == nullptr && plain_->Failed()) {
      return nullptr;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return nullptr;
}

std::shared_ptr<const spe::CheckpointStore::Checkpoint>
ShardRuntime::DrainToCheckpoint() {
  if (!started_ || stopped_) return nullptr;
  auto cp = CheckpointAndWait();
  if (cp == nullptr) return nullptr;
  (void)Stop();
  return cp;
}

Status ShardRuntime::FinishAndWait() {
  if (!started_ || stopped_) return Status::OK();
  CloseRing();  // drains everything enqueued, then the pump exits
  stopped_ = true;
  if (supervised_ != nullptr) return supervised_->FinishAndWait();
  return plain_->FinishAndWait();
}

Status ShardRuntime::Stop() {
  if (!started_ || stopped_) return Status::OK();
  CloseRing();
  stopped_ = true;
  if (supervised_ != nullptr) return supervised_->Stop();
  return plain_->Stop();
}

Status ShardRuntime::Health() const {
  if (job() == nullptr) return Status::FailedPrecondition("not started");
  return job()->Health();
}

bool ShardRuntime::Failed() const {
  return job() != nullptr && job()->Failed();
}

void ShardRuntime::Kill(const Status& why) {
  if (job() != nullptr) job()->DeclareFailed(why);
}

void ShardRuntime::SetResultCallback(
    core::AStreamJob::ResultCallback callback) {
  if (supervised_ != nullptr) {
    supervised_->SetResultCallback(std::move(callback));
  } else if (plain_ != nullptr) {
    plain_->SetResultCallback(std::move(callback));
  }
}

core::AStreamJob* ShardRuntime::job() {
  return supervised_ != nullptr ? supervised_->job() : plain_.get();
}

const core::AStreamJob* ShardRuntime::job() const {
  return supervised_ != nullptr ? supervised_->job() : plain_.get();
}

obs::MetricsRegistry::Snapshot ShardRuntime::MetricsSnapshot() {
  return job()->MetricsSnapshot();
}

core::QosMonitor::Snapshot ShardRuntime::QosSnapshot() {
  return job()->qos().TakeSnapshot();
}

core::AStreamJob::OperatorStats ShardRuntime::CollectStats() const {
  return job()->CollectStats();
}

void ShardRuntime::PumpLoop() {
  Ingress item;
  while (ring_->Pop(&item)) {
    if (item.stream < 0) {
      ApplyWatermark(item.time);
    } else {
      // Supervised shards log + recover inside the push; a poisoned
      // plain shard reports kShutdown, surfaced via Health().
      (void)ApplyPush(item.stream, item.time, std::move(item.row));
    }
    applied_.fetch_add(1, std::memory_order_release);
  }
}

void ShardRuntime::Quiesce() {
  if (ring_ == nullptr) return;
  // Single producer (the control thread — us): enqueued_ is stable here.
  const int64_t target = enqueued_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  while (applied_.load(std::memory_order_acquire) < target) {
    // Bounded wait (repo idiom): no wakeup protocol to get wrong, worst
    // case one millisecond of extra latency per control-plane call.
    quiesce_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

core::PushResult ShardRuntime::ApplyPush(int stream, TimestampMs t,
                                         spe::Row row) {
  if (supervised_ != nullptr) {
    // Supervised shards replay from a two-stream source log; multiway
    // topologies are rejected at config validation.
    return stream == 0 ? supervised_->PushA(t, std::move(row))
                       : supervised_->PushB(t, std::move(row));
  }
  return plain_->Push(stream, t, std::move(row));
}

void ShardRuntime::ApplyWatermark(TimestampMs wm) {
  if (supervised_ != nullptr) {
    supervised_->PushWatermark(wm);
  } else {
    plain_->PushWatermark(wm);
  }
}

void ShardRuntime::CloseRing() {
  if (ring_ == nullptr) return;
  ring_->Close();
  if (pump_.joinable()) pump_.join();
}

}  // namespace astream::shard
