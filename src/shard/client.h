#ifndef ASTREAM_SHARD_CLIENT_H_
#define ASTREAM_SHARD_CLIENT_H_

#include <memory>

#include "shard/router.h"

namespace astream {

/// The unified client of a (possibly sharded) AStream deployment — the
/// single public entry point that replaces constructing AStreamJob
/// directly:
///
///   auto config = JobConfigBuilder(TopologyKind::kJoin)
///                     .Shards(4).ShardThreads(true).Build();
///   auto client = Client::Create(*config);      // eager validation
///   (*client)->Start();
///   (*client)->Push(StreamId::kA, t, {key, v}); // generic push
///   auto q = (*client)->Submit(desc);           // fans out, one id
///
/// With shards == 1 and shard_threads == false the client behaves
/// exactly like a lone AStreamJob (the router degenerates to a pass-
/// through); more shards scale the push path across per-shard ingress
/// rings and engines, with merged outputs/metrics and live resharding
/// (MoveShard/SplitShard) behind the same surface.
///
/// Single control thread, like AStreamJob. `Push(StreamId, ...)` is the
/// generic data surface; PushA/PushB survive as deprecated compat shims.
class Client {
 public:
  using TopologyKind = core::AStreamJob::TopologyKind;
  using ResultCallback = core::AStreamJob::ResultCallback;

  /// Validates eagerly (JobConfig::Validated) and builds the deployment;
  /// invalid configs never construct a client.
  static Result<std::unique_ptr<Client>> Create(JobConfig config);

  Status Start() { return router_->Start(); }

  /// Generic data input: one entry point for every external stream.
  core::PushResult Push(StreamId stream, TimestampMs event_time,
                        spe::Row row) {
    return router_->Push(stream, event_time, std::move(row));
  }
  void PushWatermark(TimestampMs watermark) {
    router_->PushWatermark(watermark);
  }

  /// Deprecated compat shims for the old hardwired pair; new code calls
  /// Push(StreamId::kA / StreamId::kB, ...).
  core::PushResult PushA(TimestampMs event_time, spe::Row row) {
    return Push(StreamId::kA, event_time, std::move(row));
  }
  core::PushResult PushB(TimestampMs event_time, spe::Row row) {
    return Push(StreamId::kB, event_time, std::move(row));
  }

  Result<core::QueryId> Submit(const core::QueryDescriptor& desc) {
    return router_->Submit(desc);
  }
  Status Cancel(core::QueryId id) { return router_->Cancel(id); }
  int Pump(bool force = false) { return router_->Pump(force); }
  bool WaitForDeployment(TimestampMs timeout_ms = 10'000) {
    return router_->WaitForDeployment(timeout_ms);
  }

  Status Checkpoint() { return router_->Checkpoint(); }
  Status MoveShard(int shard) { return router_->MoveShard(shard); }
  Status SplitShard(int shard) { return router_->SplitShard(shard); }

  Status FinishAndWait() { return router_->FinishAndWait(); }
  Status Stop() { return router_->Stop(); }
  Status Health() const { return router_->Health(); }

  void SetResultCallback(ResultCallback callback) {
    router_->SetResultCallback(std::move(callback));
  }

  /// Deployment-wide observability (merged across shards).
  obs::MetricsRegistry::Snapshot MetricsSnapshot() {
    return router_->MetricsSnapshot();
  }
  core::QosMonitor::Snapshot QosSnapshot() { return router_->QosSnapshot(); }
  core::AStreamJob::OperatorStats CollectStats() const {
    return router_->CollectStats();
  }

  int num_shards() const { return router_->num_shards(); }
  int64_t last_reshard_pause_ms() const {
    return router_->last_reshard_pause_ms();
  }
  const JobConfig& config() const { return config_; }
  /// Escape hatch for tests and advanced callers.
  shard::ShardRouter* router() { return router_.get(); }

 private:
  Client(JobConfig config, std::unique_ptr<shard::ShardRouter> router)
      : config_(std::move(config)), router_(std::move(router)) {}

  JobConfig config_;
  std::unique_ptr<shard::ShardRouter> router_;
};

}  // namespace astream

#endif  // ASTREAM_SHARD_CLIENT_H_
