#include "fault/injector.h"

namespace astream::fault {

namespace internal {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace internal

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kOperatorProcess:
      return "operator_process";
    case FaultPoint::kSnapshot:
      return "snapshot";
    case FaultPoint::kChannelPush:
      return "channel_push";
    case FaultPoint::kConsumerStall:
      return "consumer_stall";
    case FaultPoint::kStorageWrite:
      return "storage_write";
    case FaultPoint::kCompaction:
      return "compaction";
    case FaultPoint::kNumPoints:
      break;
  }
  return "unknown";
}

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

void FaultInjector::AddRule(Rule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(rule);
  rule_fires_.push_back(0);
}

FaultDecision FaultInjector::Decide(FaultPoint point, int stage) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t p = static_cast<size_t>(point);
  const int64_t hit = ++hits_[p];
  for (size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    if (rule.point != point) continue;
    if (rule.stage >= 0 && rule.stage != stage) continue;
    if (hit <= rule.after_hits) continue;
    if (rule.max_fires > 0 && rule_fires_[i] >= rule.max_fires) continue;
    if (rule.probability < 1.0 && !rng_.Bernoulli(rule.probability)) {
      continue;
    }
    ++rule_fires_[i];
    ++fires_[p];
    FaultDecision decision;
    decision.action = rule.action;
    decision.delay_us = rule.delay_us;
    return decision;
  }
  return FaultDecision{};
}

int64_t FaultInjector::hits(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_[static_cast<size_t>(point)];
}

int64_t FaultInjector::fires(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fires_[static_cast<size_t>(point)];
}

int64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (int64_t f : fires_) total += f;
  return total;
}

ScopedFaultInjection::ScopedFaultInjection(FaultInjector* injector)
    : previous_(internal::g_injector.exchange(injector,
                                              std::memory_order_acq_rel)) {}

ScopedFaultInjection::~ScopedFaultInjection() {
  internal::g_injector.store(previous_, std::memory_order_release);
}

}  // namespace astream::fault
