#ifndef ASTREAM_FAULT_INJECTOR_H_
#define ASTREAM_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"

namespace astream::fault {

/// Named injection points in the data plane. Each hook site reports its
/// point (and stage, where known) and the injector decides — from the
/// seeded RNG and the per-point hit counters — whether a fault fires.
enum class FaultPoint : uint8_t {
  /// Before an operator instance processes a record run (runner task
  /// thread). kThrow here models an operator crash.
  kOperatorProcess = 0,
  /// At a checkpoint barrier, before SnapshotState. kFail turns the
  /// snapshot into a failure (the checkpoint never completes); kThrow
  /// crashes the task at the barrier.
  kSnapshot,
  /// On a channel/ring push. kDelay stalls the producer; kClose closes
  /// the channel under the producer (drop-to-closed), which the runner
  /// must detect as data loss and convert into a job failure.
  kChannelPush,
  /// Per task-loop iteration. kDelay models a slow consumer (stall),
  /// which the watchdog's heartbeat tracking must notice.
  kConsumerStall,
  /// On a storage-engine run-file write (spill or durable checkpoint;
  /// block flush and finish/rename). kFail turns the write into an error
  /// Status (the spill is skipped, resident state kept); kThrow models a
  /// crash mid-write, leaving a torn temp file that CRC/footer validation
  /// must reject on recovery.
  kStorageWrite,
  /// Inside a background-compaction job, between the input merge and the
  /// output adoption. kFail aborts the job (ticket kFailed, inputs kept);
  /// kThrow models the worker dying mid-compaction — the engine must
  /// discard the torn output and keep serving from the input runs.
  kCompaction,
  kNumPoints,
};

inline constexpr size_t kNumFaultPoints =
    static_cast<size_t>(FaultPoint::kNumPoints);

const char* FaultPointName(FaultPoint point);

/// What a triggered fault does at its site.
enum class FaultAction : uint8_t {
  kNone = 0,
  kThrow,  ///< throw InjectedFault (poisons the task)
  kFail,   ///< return a failure Status at the site
  kDelay,  ///< sleep delay_us at the site
  kClose,  ///< close the channel/ring (drop-to-closed)
};

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  int64_t delay_us = 0;
  explicit operator bool() const { return action != FaultAction::kNone; }
};

/// Exception thrown at kThrow sites. A distinct type so tests and logs can
/// tell injected crashes from genuine bugs; the runner treats both the
/// same (task poison -> recovery).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// Seeded, deterministic fault-schedule generator. All decisions flow from
/// the seed, the rule list, and the order in which hook sites call
/// Decide() — so one seed plus a deterministic schedule of hits replays
/// the same fault pattern, and rules with probability 1.0 and an
/// `after_hits` threshold fire at an exact global hit count regardless of
/// thread interleaving.
///
/// Thread-safe: Decide() takes an internal mutex (injection is a test/
/// chaos mode; the disabled path never reaches the injector at all).
class FaultInjector {
 public:
  struct Rule {
    FaultPoint point = FaultPoint::kOperatorProcess;
    FaultAction action = FaultAction::kThrow;
    /// Probability a hit (past `after_hits`) fires, drawn from the seeded
    /// RNG. 1.0 = deterministic in the global hit order.
    double probability = 1.0;
    /// The rule arms only after the point has been hit this many times.
    int64_t after_hits = 0;
    /// Stop firing after this many fires (0 = unlimited).
    int64_t max_fires = 1;
    /// Restrict to one stage (-1 = any; channel/ring sites report -1).
    int stage = -1;
    /// Sleep duration for kDelay.
    int64_t delay_us = 0;
  };

  explicit FaultInjector(uint64_t seed);

  void AddRule(Rule rule);

  /// Decision for one hit of `point` at `stage`. Counts the hit, then
  /// returns the first armed rule that fires (kNone decision otherwise).
  FaultDecision Decide(FaultPoint point, int stage = -1);

  int64_t hits(FaultPoint point) const;
  int64_t fires(FaultPoint point) const;
  int64_t total_fires() const;

 private:
  mutable std::mutex mutex_;
  Rng rng_;
  std::vector<Rule> rules_;
  std::vector<int64_t> rule_fires_;
  std::array<int64_t, kNumFaultPoints> hits_{};
  std::array<int64_t, kNumFaultPoints> fires_{};
};

namespace internal {
extern std::atomic<FaultInjector*> g_injector;
}  // namespace internal

/// The process-global active injector, or nullptr (the normal case).
/// Hook sites do one relaxed atomic load + predicted-not-taken branch when
/// disabled — the same zero-cost pattern as the obs layer.
inline FaultInjector* ActiveInjector() {
  return internal::g_injector.load(std::memory_order_acquire);
}

/// RAII installer. Install before Start(), uninstall after the job is
/// fully stopped; reference (fault-free) runs simply never install one.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace astream::fault

#endif  // ASTREAM_FAULT_INJECTOR_H_
