// The paper's motivating scenario (Sec. 1.1, Fig. 1): an online-gaming
// company with an advertisement stream A and a purchases stream P. Three
// teams run ad-hoc queries over the SAME shared job:
//
//   Q1 (marketing, short-living):   sigma_{A.geo = DE}(A)   JOIN  sigma_{P.price > 50}(P)
//   Q2 (psychology, long-living):   sigma_{A.length > 60}(A) JOIN sigma_{P.age < 18}(P)
//   Q3 (system, session-based):     sigma_{A.price > 10}(A)  JOIN sigma_{P.level = Pro}(P)
//
// Streams share one topology; queries come and go without redeployment.
//
// Row schemas (column 0 is always the join key = user id):
//   Ads A:       [user, geo, length, price]
//   Purchases P: [user, price, age, level]

#include <cstdio>

#include "common/rng.h"
#include "core/astream.h"
#include "core/query_builder.h"

using astream::ManualClock;
using astream::Rng;
using astream::core::AStreamJob;
using astream::core::CmpOp;
using astream::core::QueryBuilder;
using astream::core::QueryId;
using astream::spe::Row;

namespace {

constexpr int kGeoDE = 1;    // geo codes: 0 = US, 1 = DE, 2 = JP
constexpr int kLevelPro = 2; // levels: 0 = rookie, 1 = regular, 2 = pro

}  // namespace

int main() {
  ManualClock clock;
  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kJoin;
  options.parallelism = 2;
  options.clock = &clock;

  auto job = std::move(AStreamJob::Create(options)).value();
  if (auto s = job->Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  int64_t results_by_query[4] = {0, 0, 0, 0};
  job->SetResultCallback([&](QueryId q, const astream::spe::Record& r) {
    if (q >= 1 && q <= 3) ++results_by_query[q];
    (void)r;
  });

  // Q2 is pre-scheduled (long-living, starts with the day).
  const QueryId q2 = *job->Submit(*QueryBuilder::Join()
                                       .WhereA(2, CmpOp::kGt, 60)   // A.length > 60
                                       .WhereB(2, CmpOp::kLt, 18)   // P.age < 18
                                       .TumblingWindow(2000)
                                       .Build());
  job->Pump(true);
  std::printf("t=0s    psychology team starts Q2 (long-living)\n");

  Rng rng(2024);
  auto push_traffic = [&](int from_ms, int to_ms) {
    for (int t = from_ms; t < to_ms; t += 5) {
      clock.SetMs(t);
      const int64_t user = rng.UniformInt(0, 49);
      if (rng.Bernoulli(0.5)) {
        // Ad impression: [user, geo, length, price]
        job->PushA(t, Row{user, rng.UniformInt(0, 2),
                          rng.UniformInt(10, 120), rng.UniformInt(1, 30)});
      } else {
        // Purchase: [user, price, age, level]
        job->PushB(t, Row{user, rng.UniformInt(1, 120),
                          rng.UniformInt(12, 60), rng.UniformInt(0, 2)});
      }
      if (t % 500 == 0) job->PushWatermark(t);
    }
  };

  push_traffic(0, 4000);

  // The marketing team fires up Q1 ad hoc.
  clock.SetMs(4000);
  const QueryId q1 = *job->Submit(*QueryBuilder::Join()
                                       .WhereA(1, CmpOp::kEq, kGeoDE)  // A.geo == DE
                                       .WhereB(1, CmpOp::kGt, 50)      // P.price > 50
                                       .SlidingWindow(3000, 1000)
                                       .Build());
  job->Pump(true);
  std::printf("t=4s    marketing team starts Q1 (ad-hoc)\n");

  push_traffic(4001, 8000);

  // The system spawns Q3 for a pro-player session.
  clock.SetMs(8000);
  const QueryId q3 = *job->Submit(*QueryBuilder::Join()
                                       .WhereA(3, CmpOp::kGt, 10)         // A.price > 10
                                       .WhereB(3, CmpOp::kEq, kLevelPro)  // P.level == Pro
                                       .TumblingWindow(1500)
                                       .Build());
  job->Pump(true);
  std::printf("t=8s    session trigger starts Q3 (system, ad-hoc)\n");

  push_traffic(8001, 12000);

  // Marketing got what it needed: Q1 is shut down; everything else
  // continues without interruption.
  clock.SetMs(12000);
  job->Cancel(q1).ok();
  job->Pump(true);
  std::printf("t=12s   marketing stops Q1; Q2/Q3 keep running\n");

  push_traffic(12001, 16000);

  // The pro session ends: Q3 is deleted by the system.
  clock.SetMs(16000);
  job->Cancel(q3).ok();
  job->Pump(true);
  std::printf("t=16s   session ends, Q3 removed\n");

  push_traffic(16001, 20000);
  job->FinishAndWait();

  std::printf("\nresults per query (joined ad/purchase pairs):\n");
  std::printf("  Q1 (marketing, active 4s-12s):  %lld\n",
              static_cast<long long>(results_by_query[q1]));
  std::printf("  Q2 (psychology, whole run):     %lld\n",
              static_cast<long long>(results_by_query[q2]));
  std::printf("  Q3 (pro session, active 8s-16s): %lld\n",
              static_cast<long long>(results_by_query[q3]));

  const auto stats = job->CollectStats();
  std::printf("\nsharing at work: %lld slice pairs joined once, "
              "%lld reuses across queries/windows\n",
              static_cast<long long>(stats.join_pairs_computed),
              static_cast<long long>(stats.join_pairs_reused));
  return 0;
}
