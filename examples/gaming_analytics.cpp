// The paper's motivating scenario (Sec. 1.1, Fig. 1): an online-gaming
// company with an advertisement stream A and a purchases stream P. Three
// teams run ad-hoc queries over the SAME shared deployment:
//
//   Q1 (marketing, short-living):   sigma_{A.geo = DE}(A)   JOIN  sigma_{P.price > 50}(P)
//   Q2 (psychology, long-living):   sigma_{A.length > 60}(A) JOIN sigma_{P.age < 18}(P)
//   Q3 (system, session-based):     sigma_{A.price > 10}(A)  JOIN sigma_{P.level = Pro}(P)
//
// Streams share one topology; queries come and go without redeployment —
// and when the evening traffic spike arrives, the deployment scales OUT
// live: one shard is split in place while every query keeps running.
//
// Row schemas (column 0 is always the join key = user id):
//   Ads A:       [user, geo, length, price]
//   Purchases P: [user, price, age, level]

#include <cstdio>

#include "common/rng.h"
#include "core/query_builder.h"
#include "shard/client.h"

using astream::Client;
using astream::JobConfigBuilder;
using astream::ManualClock;
using astream::Rng;
using astream::StreamId;
using astream::core::AStreamJob;
using astream::core::CmpOp;
using astream::core::QueryBuilder;
using astream::core::QueryId;
using astream::spe::Row;

namespace {

constexpr int kGeoDE = 1;    // geo codes: 0 = US, 1 = DE, 2 = JP
constexpr int kLevelPro = 2; // levels: 0 = rookie, 1 = regular, 2 = pro

}  // namespace

int main() {
  ManualClock clock;
  auto config = JobConfigBuilder(AStreamJob::TopologyKind::kJoin)
                    .Parallelism(2)
                    .Clock(&clock)
                    .Shards(2)
                    .Slots(8)
                    .Build();
  auto client = std::move(Client::Create(*config)).value();
  if (auto s = client->Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  int64_t results_by_query[4] = {0, 0, 0, 0};
  client->SetResultCallback([&](QueryId q, const astream::spe::Record& r) {
    if (q >= 1 && q <= 3) ++results_by_query[q];
    (void)r;
  });

  // Q2 is pre-scheduled (long-living, starts with the day).
  const QueryId q2 = *client->Submit(*QueryBuilder::Join()
                                          .WhereA(2, CmpOp::kGt, 60)  // A.length > 60
                                          .WhereB(2, CmpOp::kLt, 18)  // P.age < 18
                                          .TumblingWindow(2000)
                                          .Build());
  client->Pump(true);
  std::printf("t=0s    psychology team starts Q2 (long-living)\n");

  Rng rng(2024);
  auto push_traffic = [&](int from_ms, int to_ms) {
    for (int t = from_ms; t < to_ms; t += 5) {
      clock.SetMs(t);
      const int64_t user = rng.UniformInt(0, 49);
      if (rng.Bernoulli(0.5)) {
        // Ad impression: [user, geo, length, price]
        client->Push(StreamId::kA, t,
                     Row{user, rng.UniformInt(0, 2), rng.UniformInt(10, 120),
                         rng.UniformInt(1, 30)});
      } else {
        // Purchase: [user, price, age, level]
        client->Push(StreamId::kB, t,
                     Row{user, rng.UniformInt(1, 120),
                         rng.UniformInt(12, 60), rng.UniformInt(0, 2)});
      }
      if (t % 500 == 0) client->PushWatermark(t);
    }
  };

  push_traffic(0, 4000);

  // The marketing team fires up Q1 ad hoc.
  clock.SetMs(4000);
  const QueryId q1 = *client->Submit(*QueryBuilder::Join()
                                          .WhereA(1, CmpOp::kEq, kGeoDE)  // A.geo == DE
                                          .WhereB(1, CmpOp::kGt, 50)      // P.price > 50
                                          .SlidingWindow(3000, 1000)
                                          .Build());
  client->Pump(true);
  std::printf("t=4s    marketing team starts Q1 (ad-hoc)\n");

  push_traffic(4001, 8000);

  // The system spawns Q3 for a pro-player session.
  clock.SetMs(8000);
  const QueryId q3 = *client->Submit(*QueryBuilder::Join()
                                          .WhereA(3, CmpOp::kGt, 10)         // A.price > 10
                                          .WhereB(3, CmpOp::kEq, kLevelPro)  // P.level == Pro
                                          .TumblingWindow(1500)
                                          .Build());
  client->Pump(true);
  std::printf("t=8s    session trigger starts Q3 (system, ad-hoc)\n");

  push_traffic(8001, 10000);

  // The evening spike: scale out live. Shard 0 drains to a checkpoint and
  // its key range splits onto a brand-new shard — every query keeps its
  // state, not a single result is lost or duplicated.
  if (auto s = client->SplitShard(0); s.ok()) {
    std::printf(
        "t=10s   traffic spike — split shard 0: now %d shards "
        "(%lldms pause)\n",
        client->num_shards(),
        static_cast<long long>(client->last_reshard_pause_ms()));
  } else {
    std::printf("t=10s   split failed: %s\n", s.ToString().c_str());
  }

  push_traffic(10001, 12000);

  // Marketing got what it needed: Q1 is shut down; everything else
  // continues without interruption.
  clock.SetMs(12000);
  client->Cancel(q1).ok();
  client->Pump(true);
  std::printf("t=12s   marketing stops Q1; Q2/Q3 keep running\n");

  push_traffic(12001, 16000);

  // The pro session ends: Q3 is deleted by the system.
  clock.SetMs(16000);
  client->Cancel(q3).ok();
  client->Pump(true);
  std::printf("t=16s   session ends, Q3 removed\n");

  push_traffic(16001, 20000);
  client->FinishAndWait();

  std::printf("\nresults per query (joined ad/purchase pairs):\n");
  std::printf("  Q1 (marketing, active 4s-12s):  %lld\n",
              static_cast<long long>(results_by_query[q1]));
  std::printf("  Q2 (psychology, whole run):     %lld\n",
              static_cast<long long>(results_by_query[q2]));
  std::printf("  Q3 (pro session, active 8s-16s): %lld\n",
              static_cast<long long>(results_by_query[q3]));

  const auto stats = client->CollectStats();
  std::printf("\nsharing at work: %lld slice pairs joined once, "
              "%lld reuses across queries/windows\n",
              static_cast<long long>(stats.join_pairs_computed),
              static_cast<long long>(stats.join_pairs_reused));
  return 0;
}
