// Quickstart: one shared AStream job, two ad-hoc queries created at
// runtime, results printed per query.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/astream.h"
#include "core/query_builder.h"

using astream::core::AStreamJob;
using astream::core::CmpOp;
using astream::core::QueryBuilder;
using astream::core::QueryId;
using astream::spe::AggKind;
using astream::spe::Row;

int main() {
  // A deterministic clock keeps this example reproducible; real
  // deployments simply omit `options.clock` to use the wall clock.
  astream::ManualClock clock;

  AStreamJob::Options options;
  options.topology = AStreamJob::TopologyKind::kAggregation;
  options.parallelism = 2;
  options.clock = &clock;

  auto job_or = AStreamJob::Create(options);
  if (!job_or.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 job_or.status().ToString().c_str());
    return 1;
  }
  auto job = std::move(job_or).value();
  if (auto s = job->Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  job->SetResultCallback([](QueryId query, const astream::spe::Record& r) {
    std::printf("  [Q%lld @t=%lld] %s\n",
                static_cast<long long>(query),
                static_cast<long long>(r.event_time),
                r.row.ToString().c_str());
  });

  // --- Ad-hoc query #1: a selection. "Give me every event whose first
  // field is below 50" — think of it as a live debugging tap.
  const QueryId q_tap = *job->Submit(
      *QueryBuilder::Selection().WhereA(1, CmpOp::kLt, 50).Build());

  // --- Ad-hoc query #2: a windowed aggregation. "Per key, the sum of
  // field 1 over 1-second tumbling windows."
  const QueryId q_sums = *job->Submit(*QueryBuilder::Aggregation()
                                           .TumblingWindow(1000)
                                           .Agg(AggKind::kSum, 1)
                                           .Build());

  job->Pump(/*force=*/true);  // flush the session batch -> both go live
  std::printf("submitted tap=Q%lld and sums=Q%lld\n\n",
              static_cast<long long>(q_tap),
              static_cast<long long>(q_sums));

  // --- Stream some data. Event times are milliseconds.
  std::printf("results as they stream:\n");
  for (int t = 10; t < 2500; t += 10) {
    clock.SetMs(t);
    job->PushA(t, Row{/*key=*/t % 3, /*field1=*/t % 97});
    if (t % 250 == 0) job->PushWatermark(t);
  }

  // The tap can be removed at any time — no redeployment, the sums query
  // keeps running undisturbed.
  clock.SetMs(2500);
  job->Cancel(q_tap).ok();
  job->Pump(true);
  std::printf("\ncancelled the tap; streaming more data...\n");
  for (int t = 2510; t < 3200; t += 10) {
    clock.SetMs(t);
    job->PushA(t, Row{t % 3, t % 97});
    if (t % 250 == 0) job->PushWatermark(t);
  }

  job->FinishAndWait();
  std::printf("\ntap results: %lld rows, sums results: %lld rows\n",
              static_cast<long long>(job->qos().OutputsOf(q_tap)),
              static_cast<long long>(job->qos().OutputsOf(q_sums)));
  return 0;
}
