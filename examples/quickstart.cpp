// Quickstart: one shared AStream deployment behind the unified client,
// two ad-hoc queries created at runtime, results printed per query.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/query_builder.h"
#include "shard/client.h"

using astream::Client;
using astream::JobConfigBuilder;
using astream::StreamId;
using astream::core::AStreamJob;
using astream::core::CmpOp;
using astream::core::QueryBuilder;
using astream::core::QueryId;
using astream::spe::AggKind;
using astream::spe::Row;

int main() {
  // A deterministic clock keeps this example reproducible; real
  // deployments simply omit `.Clock(...)` to use the wall clock.
  astream::ManualClock clock;

  // The config validates eagerly: a bad knob fails here, never mid-run.
  // Two shards scale the push path; with Shards(1) the client behaves
  // exactly like a lone AStreamJob.
  auto config = JobConfigBuilder(AStreamJob::TopologyKind::kAggregation)
                    .Parallelism(2)
                    .Clock(&clock)
                    .Shards(2)
                    .Build();
  if (!config.ok()) {
    std::fprintf(stderr, "config rejected: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  auto client_or = Client::Create(*config);
  if (!client_or.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(client_or).value();
  if (auto s = client->Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  client->SetResultCallback([](QueryId query, const astream::spe::Record& r) {
    std::printf("  [Q%lld @t=%lld] %s\n",
                static_cast<long long>(query),
                static_cast<long long>(r.event_time),
                r.row.ToString().c_str());
  });

  // --- Ad-hoc query #1: a selection. "Give me every event whose first
  // field is below 50" — think of it as a live debugging tap. The submit
  // fans out to every shard under one query id.
  const QueryId q_tap = *client->Submit(
      *QueryBuilder::Selection().WhereA(1, CmpOp::kLt, 50).Build());

  // --- Ad-hoc query #2: a windowed aggregation. "Per key, the sum of
  // field 1 over 1-second tumbling windows."
  const QueryId q_sums = *client->Submit(*QueryBuilder::Aggregation()
                                              .TumblingWindow(1000)
                                              .Agg(AggKind::kSum, 1)
                                              .Build());

  client->Pump(/*force=*/true);  // flush the session batch -> both go live
  std::printf("submitted tap=Q%lld and sums=Q%lld on %d shards\n\n",
              static_cast<long long>(q_tap),
              static_cast<long long>(q_sums), client->num_shards());

  // --- Stream some data. Event times are milliseconds. Rows route to
  // their key's owning shard; watermarks broadcast.
  std::printf("results as they stream:\n");
  for (int t = 10; t < 2500; t += 10) {
    clock.SetMs(t);
    client->Push(StreamId::kA, t, Row{/*key=*/t % 3, /*field1=*/t % 97});
    if (t % 250 == 0) client->PushWatermark(t);
  }

  // The tap can be removed at any time — no redeployment, the sums query
  // keeps running undisturbed.
  clock.SetMs(2500);
  client->Cancel(q_tap).ok();
  client->Pump(true);
  std::printf("\ncancelled the tap; streaming more data...\n");
  for (int t = 2510; t < 3200; t += 10) {
    clock.SetMs(t);
    client->Push(StreamId::kA, t, Row{t % 3, t % 97});
    if (t % 250 == 0) client->PushWatermark(t);
  }

  client->FinishAndWait();
  const auto qos = client->QosSnapshot();
  auto outputs_of = [&qos](QueryId q) -> long long {
    auto it = qos.outputs_per_query.find(q);
    return it == qos.outputs_per_query.end() ? 0 : it->second;
  };
  std::printf("\ntap results: %lld rows, sums results: %lld rows\n",
              outputs_of(q_tap), outputs_of(q_sums));
  return 0;
}
