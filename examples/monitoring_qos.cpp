// QoS monitoring (Sec. 3.4): a multi-tenant sharded deployment where an
// operator watches event-time latency, deployment latency, and per-query
// output rates while tenants churn ad-hoc aggregation queries.
// Demonstrates the unified client over two shards, deployment-wide merged
// metrics, the checkpoint API, and the per-query observability layer
// (metrics registry + trace export).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "obs/export.h"
#include "shard/client.h"
#include "workload/query_generator.h"

using astream::Client;
using astream::JobConfigBuilder;
using astream::ManualClock;
using astream::Rng;
using astream::StreamId;
using astream::core::AStreamJob;
using astream::core::QueryId;
using astream::spe::Row;

int main() {
  ManualClock clock;
  auto config = JobConfigBuilder(AStreamJob::TopologyKind::kAggregation)
                    .Parallelism(2)
                    .Clock(&clock)
                    .SessionBatch(8, 500)
                    .Shards(2)
                    .Build();
  if (!config.ok()) {
    std::fprintf(stderr, "config rejected: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(Client::Create(*config)).value();
  if (auto s = client->Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  astream::workload::QueryGenerator::Config qcfg;
  qcfg.num_fields = 1;  // rows below carry [key, value]
  qcfg.window_min = 500;
  qcfg.window_max = 2000;
  qcfg.session_probability = 0.2;  // some tenants use session windows
  astream::workload::QueryGenerator qgen(qcfg, 7);

  Rng rng(99);
  std::vector<QueryId> tenants;
  int64_t checkpoints_taken = 0;
  int64_t checkpoints_completed = 0;

  for (int t = 0; t < 20'000; t += 5) {
    clock.SetMs(t);
    // Tenant churn: occasionally add or remove a query. The generator
    // draws a query the configured topology can host; the submit fans
    // out to every shard under one id.
    if (t % 1000 == 0 && tenants.size() < 12) {
      auto id = client->Submit(qgen.RandomFor(*config));
      if (id.ok()) tenants.push_back(*id);
    }
    if (t % 3500 == 0 && tenants.size() > 2) {
      client->Cancel(tenants.front()).ok();
      tenants.erase(tenants.begin());
    }
    client->Pump();

    // Data plane: rows route to their key's owning shard.
    client->Push(StreamId::kA, t,
                 Row{rng.UniformInt(0, 19), rng.UniformInt(0, 999)});
    if (t % 250 == 0) client->PushWatermark(t);

    // Periodic checkpoint (exactly-once state snapshots, Sec. 3.3),
    // coordinated across every shard.
    if (t > 0 && t % 5000 == 0) {
      ++checkpoints_taken;
      if (client->Checkpoint().ok()) ++checkpoints_completed;
    }

    // The QoS dashboard: print a line every simulated 4 seconds. The
    // percentiles come from the lock-free per-query histograms, merged
    // across shards.
    if (t > 0 && t % 4000 == 0) {
      const auto snap = client->QosSnapshot();
      const auto metrics = client->MetricsSnapshot();
      // Deployment-wide p95/p99 from the busiest tenant's histogram
      // (per-query percentiles don't merge exactly; show the worst query).
      double p95 = 0, p99 = 0;
      int64_t worst = -1;
      for (const auto& [id, series] : metrics.queries) {
        const double q95 = series.event_latency_ms.Percentile(95);
        if (q95 >= p95) {
          p95 = q95;
          p99 = series.event_latency_ms.Percentile(99);
          worst = id;
        }
      }
      std::printf(
          "t=%2ds  active=%2zu  outputs=%-7lld  "
          "event-latency mean=%.0fms worst-query Q%lld p95=%.0fms "
          "p99=%.0fms  deploy mean=%.0fms\n",
          t / 1000, tenants.size(),
          static_cast<long long>(snap.total_outputs),
          snap.event_time_latency.mean(), static_cast<long long>(worst),
          p95, p99, snap.deployment_latency.mean());
    }
  }

  client->FinishAndWait();

  const auto snap = client->QosSnapshot();
  std::printf("\nfinal report (%d shards)\n", client->num_shards());
  std::printf("  outputs total:          %lld\n",
              static_cast<long long>(snap.total_outputs));
  std::printf("  event-time latency:     mean %.0fms, max %lldms\n",
              snap.event_time_latency.mean(),
              static_cast<long long>(snap.event_time_latency.max()));
  std::printf("  deployment latency:     mean %.0fms over %lld requests\n",
              snap.deployment_latency.mean(),
              static_cast<long long>(snap.deployment_latency.count()));
  std::printf("  checkpoints completed:  %lld of %lld\n",
              static_cast<long long>(checkpoints_completed),
              static_cast<long long>(checkpoints_taken));
  std::printf("  busiest tenants:\n");
  std::vector<std::pair<int64_t, QueryId>> by_count;
  for (const auto& [id, count] : snap.outputs_per_query) {
    by_count.emplace_back(count, id);
  }
  std::sort(by_count.rbegin(), by_count.rend());
  for (size_t i = 0; i < by_count.size() && i < 3; ++i) {
    std::printf("    Q%-3lld %lld rows\n",
                static_cast<long long>(by_count[i].second),
                static_cast<long long>(by_count[i].first));
  }

  // The merged metrics registry, the way a bench or scraper would read
  // it — counters/gauges/series summed across shards, histograms merged
  // bucket-wise.
  std::printf("\nmetrics registry (merged across shards)\n%s",
              astream::obs::ExportText(client->MetricsSnapshot()).c_str());

  // Query lifecycle trace (submit -> changelog flush -> deploy ack ->
  // first result -> cancel), one JSON object per line. Each shard keeps
  // its own trace; shard 0's timeline speaks for the deployment (the
  // fan-out drives every shard through the same lifecycle).
  auto* job0 = client->router()->shard(0)->job();
  const std::string trace_path = "/tmp/astream_monitoring_trace.jsonl";
  if (job0->trace().DumpTo(trace_path).ok()) {
    std::printf("\ntrace: %zu lifecycle events written to %s\n",
                job0->trace().size(), trace_path.c_str());
    const auto events = job0->trace().Events();
    for (size_t i = 0; i < events.size() && i < 5; ++i) {
      const auto& e = events[i];
      std::printf("  {\"ts_us\":%lld,\"event\":\"%s\",\"query\":%lld,"
                  "\"detail\":%lld}\n",
                  static_cast<long long>(e.ts_us),
                  astream::obs::TraceEventKindName(e.kind),
                  static_cast<long long>(e.query),
                  static_cast<long long>(e.detail));
    }
    if (events.size() > 5) {
      std::printf("  ... %zu more\n", events.size() - 5);
    }
  }
  return 0;
}
