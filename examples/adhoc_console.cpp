// An ad-hoc query console: drive a live sharded AStream deployment with
// text commands while synthetic data streams through it — the "hundreds
// of analysts firing ad-hoc queries at a live stream" experience of the
// paper's introduction, in miniature.
//
//   ./build/examples/adhoc_console                # scripted demo
//   ./build/examples/adhoc_console --interactive  # type commands yourself
//
// Commands:
//   agg <window_ms> [col <c>] [where <col> <op> <val>]   submit aggregation
//   sel <col> <op> <val>                                  submit selection
//   del <query_id>                                        cancel a query
//   stats                                                 QoS snapshot
//   run <ms>                                              stream data
//   split <shard>                                         live scale-out
//   move <shard>                                          live migration
//   quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/query_builder.h"
#include "shard/client.h"

namespace {

using astream::Client;
using astream::JobConfig;
using astream::ManualClock;
using astream::Result;
using astream::Rng;
using astream::StreamId;
using astream::core::AStreamJob;
using astream::core::CmpOp;
using astream::core::Predicate;
using astream::core::QueryBuilder;
using astream::core::QueryDescriptor;
using astream::core::QueryId;
using astream::spe::Row;

bool ParseOp(const std::string& s, CmpOp* op) {
  if (s == "<") *op = CmpOp::kLt;
  else if (s == ">") *op = CmpOp::kGt;
  else if (s == "==") *op = CmpOp::kEq;
  else if (s == "<=") *op = CmpOp::kLe;
  else if (s == ">=") *op = CmpOp::kGe;
  else return false;
  return true;
}

class Console {
 public:
  Console() {
    JobConfig config;
    config.job.topology = AStreamJob::TopologyKind::kAggregation;
    config.job.parallelism = 2;
    config.job.clock = &clock_;
    config.job.session.batch_size = 1;
    config.shards = 2;
    config.slots = 8;
    client_ = std::move(Client::Create(std::move(config))).value();
    client_->Start().ok();
    client_->SetResultCallback(
        [this](QueryId q, const astream::spe::Record& r) {
          if (echo_results_ && printed_ < 8) {
            std::printf("    -> [Q%lld @%lld] %s\n", (long long)q,
                        (long long)r.event_time, r.row.ToString().c_str());
            ++printed_;
          }
        });
  }

  void Execute(const std::string& line) {
    std::printf("astream> %s\n", line.c_str());
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "agg") {
      long window = 0;
      in >> window;
      auto builder = QueryBuilder::Aggregation().TumblingWindow(window);
      int agg_column = 1;
      std::string kw;
      while (in >> kw) {
        if (kw == "col") {
          in >> agg_column;
        } else if (kw == "where") {
          std::vector<Predicate> preds;
          if (!ParseWhere(in, &preds)) {
            std::printf("  bad where clause\n");
            return;
          }
          for (const Predicate& p : preds) {
            builder.WhereA(p.column, p.op, p.constant);
          }
        }
      }
      Submit(builder.Agg(astream::spe::AggKind::kSum, agg_column).Build());
    } else if (cmd == "sel") {
      std::vector<Predicate> preds;
      if (!ParsePredicateArgs(in, &preds)) {
        std::printf("  usage: sel <col> <op> <val>\n");
        return;
      }
      auto builder = QueryBuilder::Selection();
      for (const Predicate& p : preds) {
        builder.WhereA(p.column, p.op, p.constant);
      }
      Submit(builder.Build());
    } else if (cmd == "del") {
      long long id = 0;
      in >> id;
      const auto s = client_->Cancel(id);
      client_->Pump(true);
      std::printf("  %s\n", s.ok() ? "cancelled" : s.ToString().c_str());
    } else if (cmd == "stats") {
      PrintStats();
    } else if (cmd == "run") {
      long ms = 0;
      in >> ms;
      Stream(ms);
    } else if (cmd == "split") {
      int shard = 0;
      in >> shard;
      const auto s = client_->SplitShard(shard);
      if (s.ok()) {
        std::printf("  split shard %d: now %d shards (%lldms pause), "
                    "every query kept its state\n",
                    shard, client_->num_shards(),
                    (long long)client_->last_reshard_pause_ms());
      } else {
        std::printf("  split failed: %s\n", s.ToString().c_str());
      }
    } else if (cmd == "move") {
      int shard = 0;
      in >> shard;
      const auto s = client_->MoveShard(shard);
      if (s.ok()) {
        std::printf("  rebuilt shard %d from its drained checkpoint "
                    "(%lldms pause)\n",
                    shard, (long long)client_->last_reshard_pause_ms());
      } else {
        std::printf("  move failed: %s\n", s.ToString().c_str());
      }
    } else if (cmd == "quit") {
      quit_ = true;
    } else if (!cmd.empty()) {
      std::printf("  unknown command '%s'\n", cmd.c_str());
    }
  }

  void Finish() {
    client_->FinishAndWait();
    PrintStats();
  }

  bool quit() const { return quit_; }

 private:
  static bool ParsePredicateArgs(std::istream& in,
                                 std::vector<Predicate>* out) {
    Predicate p;
    std::string op;
    if (!(in >> p.column >> op >> p.constant)) return false;
    if (!ParseOp(op, &p.op)) return false;
    out->push_back(p);
    return true;
  }
  static bool ParseWhere(std::istream& in, std::vector<Predicate>* out) {
    return ParsePredicateArgs(in, out);
  }

  void Submit(const Result<QueryDescriptor>& built) {
    if (!built.ok()) {
      std::printf("  rejected: %s\n", built.status().ToString().c_str());
      return;
    }
    auto id = client_->Submit(*built);
    if (!id.ok()) {
      std::printf("  rejected: %s\n", id.status().ToString().c_str());
      return;
    }
    client_->Pump(true);
    std::printf("  live as Q%lld on %d shards (%s)\n", (long long)*id,
                client_->num_shards(), built->ToString().c_str());
  }

  void Stream(long ms) {
    printed_ = 0;
    echo_results_ = true;
    const auto until = now_ + ms;
    while (now_ < until) {
      now_ += 2;
      clock_.SetMs(now_);
      client_->Push(StreamId::kA, now_,
                    Row{rng_.UniformInt(0, 9), rng_.UniformInt(0, 99),
                        rng_.UniformInt(0, 99)});
      if (now_ % 100 == 0) client_->PushWatermark(now_);
    }
    echo_results_ = false;
    std::printf("  streamed %ldms of data (t=%lld), sample results above\n",
                ms, (long long)now_);
  }

  void PrintStats() {
    const auto snap = client_->QosSnapshot();
    std::printf(
        "  shards=%d  outputs=%lld  event-latency mean=%.0fms  "
        "deploys=%lld (mean %.0fms)\n",
        client_->num_shards(), (long long)snap.total_outputs,
        snap.event_time_latency.mean(),
        (long long)snap.deployment_latency.count(),
        snap.deployment_latency.mean());
    for (const auto& [q, n] : snap.outputs_per_query) {
      std::printf("    Q%lld: %lld rows\n", (long long)q, (long long)n);
    }
  }

  ManualClock clock_;
  std::unique_ptr<Client> client_;
  Rng rng_{2025};
  astream::TimestampMs now_ = 0;
  bool quit_ = false;
  bool echo_results_ = false;
  int printed_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Console console;
  const bool interactive =
      argc > 1 && std::strcmp(argv[1], "--interactive") == 0;
  if (interactive) {
    std::string line;
    std::printf("astream ad-hoc console — 'quit' to exit\n");
    while (!console.quit() && std::getline(std::cin, line)) {
      console.Execute(line);
    }
  } else {
    // Scripted demo of the ad-hoc lifecycle, including a live scale-out.
    for (const char* line : {
             "agg 500",
             "run 1200",
             "sel 1 < 20",
             "agg 300 col 2 where 1 >= 50",
             "run 1500",
             "stats",
             "split 0",
             "run 800",
             "del 2",
             "run 800",
             "stats",
         }) {
      console.Execute(line);
    }
  }
  console.Finish();
  return 0;
}
